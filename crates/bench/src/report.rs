//! Table-formatting helpers and the metrics exporter shared by the
//! experiment binaries.
//!
//! Every binary accepts `--metrics-out <path>`: it collects one
//! [`MachineMetrics`] snapshot per labeled run into a [`MetricsReport`]
//! and writes the whole report as schema-stable JSON
//! (`ne-metrics-report/v1`). Each snapshot is passed through
//! [`MachineMetrics::check`] on the way in, so a run whose cycle
//! accounting does not add up aborts the binary instead of exporting
//! silently-wrong numbers.

use ne_sgx::metrics::{CycleCategory, MachineMetrics};
use std::path::{Path, PathBuf};

/// Prints a header banner for an experiment.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len().max(20));
    println!("{line}\n{title}\n{line}");
}

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Collects labeled per-run [`MachineMetrics`] snapshots for export.
///
/// Construct one per binary, [`push_run`] a snapshot for every
/// configuration measured, and call [`finish`] last: if the user passed
/// `--metrics-out <path>` the report lands there as JSON.
///
/// [`push_run`]: MetricsReport::push_run
/// [`finish`]: MetricsReport::finish
#[derive(Debug, Clone)]
pub struct MetricsReport {
    experiment: String,
    runs: Vec<(String, MachineMetrics)>,
}

impl MetricsReport {
    /// Creates an empty report for the named experiment (e.g. `"fig7"`).
    pub fn new(experiment: &str) -> MetricsReport {
        MetricsReport {
            experiment: experiment.to_string(),
            runs: Vec::new(),
        }
    }

    /// Appends one run's snapshot under `label`.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot fails [`MachineMetrics::check`] — a failed
    /// counter identity means the experiment's accounting is broken, and
    /// exporting it would be worse than crashing.
    pub fn push_run(&mut self, label: &str, metrics: MachineMetrics) {
        if let Err(e) = metrics.check() {
            panic!("metrics check failed for run '{label}': {e}");
        }
        self.runs.push((label.to_string(), metrics));
    }

    /// Number of runs collected so far.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no runs were collected.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Renders the report as pretty-printed JSON with a fixed key order
    /// (schema `ne-metrics-report/v1`); each run embeds its full
    /// `ne-metrics/v1` snapshot.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"ne-metrics-report/v1\",\n");
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            self.experiment.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        out.push_str("  \"runs\": [\n");
        for (i, (label, m)) in self.runs.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"label\": \"{}\",\n",
                label.replace('\\', "\\\\").replace('"', "\\\"")
            ));
            out.push_str(&format!(
                "      \"metrics\": {}\n",
                indent_tail(&m.to_json(), 6)
            ));
            out.push_str("    }");
            out.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}");
        out.push('\n');
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// I/O errors creating or writing the file.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes the report to the `--metrics-out` path, if one was given on
    /// the command line, and prints where it went. Call this last.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written — a requested export that
    /// silently vanishes is worse than an abort.
    pub fn finish(&self) {
        if let Some(path) = metrics_out_path() {
            self.write_json(&path)
                .unwrap_or_else(|e| panic!("cannot write metrics to {}: {e}", path.display()));
            println!(
                "\nmetrics: wrote {} run(s) to {}",
                self.runs.len(),
                path.display()
            );
        }
    }
}

/// Parses `--metrics-out <path>` from the process arguments.
pub fn metrics_out_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--metrics-out=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Re-indents every line of a pretty-printed JSON blob after the first by
/// `by` extra spaces, so it nests cleanly inside an outer document.
fn indent_tail(json: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    let mut lines = json.lines();
    let mut out = String::with_capacity(json.len() + 256);
    if let Some(first) = lines.next() {
        out.push_str(first);
    }
    for line in lines {
        out.push('\n');
        out.push_str(&pad);
        out.push_str(line);
    }
    out
}

/// Renders a per-enclave cycle-breakdown table from a snapshot: one row
/// per attribution bucket (untrusted first), one column per
/// [`CycleCategory`], plus a total column. The row totals sum to the
/// machine's `total_cycles` — [`MachineMetrics::check`] enforces it.
pub fn breakdown_table(m: &MachineMetrics) -> Table {
    let mut headers: Vec<&str> = vec!["Context"];
    headers.extend(CycleCategory::ALL.iter().map(|c| c.name()));
    headers.push("total");
    let mut t = Table::new(&headers);
    for e in &m.enclaves {
        let ctx = match e.eid {
            None => "untrusted".to_string(),
            Some(id) if e.outer_eids.is_empty() => format!("enclave {id} (outer)"),
            Some(id) => format!(
                "enclave {id} (inner of {})",
                e.outer_eids
                    .iter()
                    .map(|o| o.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        };
        let mut row = vec![ctx];
        row.extend(
            CycleCategory::ALL
                .iter()
                .map(|&c| e.breakdown.get(c).to_string()),
        );
        row.push(e.breakdown.total().to_string());
        t.row(&row);
    }
    let mut total_row = vec!["machine total".to_string()];
    let mut machine = ne_sgx::metrics::CycleBreakdown::default();
    for e in &m.enclaves {
        machine.merge(&e.breakdown);
    }
    total_row.extend(
        CycleCategory::ALL
            .iter()
            .map(|&c| machine.get(c).to_string()),
    );
    total_row.push(m.total_cycles.to_string());
    t.row(&total_row);
    t
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("| name   | value |"));
        assert!(r.contains("| longer | 2     |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    fn snapshot() -> MachineMetrics {
        let mut m = ne_sgx::machine::Machine::new(ne_sgx::config::HwConfig::small());
        let va = m.os_alloc_untrusted(ne_sgx::enclave::ProcessId(0), 1);
        m.write(0, va, b"payload").unwrap();
        m.metrics()
    }

    #[test]
    fn report_json_is_schema_stable() {
        let mut r = MetricsReport::new("unit");
        r.push_run("a", snapshot());
        r.push_run("b", snapshot());
        let j = r.to_json();
        assert!(j.starts_with("{\n  \"schema\": \"ne-metrics-report/v1\""));
        assert!(j.contains("\"experiment\": \"unit\""));
        assert!(j.contains("\"label\": \"a\""));
        assert!(j.contains("\"schema\": \"ne-metrics/v1\""));
        assert_eq!(r.len(), 2);
        // Identical inputs render byte-identically.
        let mut r2 = MetricsReport::new("unit");
        r2.push_run("a", snapshot());
        r2.push_run("b", snapshot());
        assert_eq!(j, r2.to_json());
    }

    #[test]
    #[should_panic(expected = "metrics check failed")]
    fn report_rejects_broken_accounting() {
        let mut m = snapshot();
        m.total_cycles += 1;
        MetricsReport::new("unit").push_run("bad", m);
    }

    #[test]
    fn breakdown_table_covers_every_bucket() {
        let m = snapshot();
        let rendered = breakdown_table(&m).render();
        assert!(rendered.contains("untrusted"));
        assert!(rendered.contains("machine total"));
        assert!(rendered.contains("tlb_walk"));
    }
}
