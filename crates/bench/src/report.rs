//! Table-formatting helpers and the metrics exporter shared by the
//! experiment binaries.
//!
//! Every binary accepts four export flags:
//!
//! - `--metrics-out <path>` — the full [`MetricsReport`]: one
//!   [`MachineMetrics`] snapshot per labeled run, as schema-stable JSON
//!   ([`REPORT_SCHEMA`]). Each snapshot passes [`MachineMetrics::check`]
//!   on the way in, so a run whose cycle accounting does not add up
//!   aborts the binary instead of exporting silently-wrong numbers.
//! - `--bench-out <path>` — the distilled `ne-bench/v1` regression
//!   baseline ([`MetricsReport::to_bench_json`]): per-run transition
//!   counts, cycle totals, and histogram summaries, the input of
//!   `ne-bench-compare`.
//! - `--profile-out <path>` — human-readable latency histogram tables.
//! - `--trace-out <path>` — Chrome Trace Event JSON of the traced run
//!   (Perfetto-loadable; folded flamegraph stacks land at
//!   `<path>.folded`), handled by [`write_trace`].

use ne_sgx::metrics::{CycleCategory, MachineMetrics};
use ne_sgx::profile::{Histogram, ProfileEvent};
use ne_sgx::spantree::TraceBundle;
use std::path::{Path, PathBuf};

/// Schema tag of the `--metrics-out` report. v2 embeds `ne-metrics/v2`
/// snapshots (latency histograms + span counters).
pub const REPORT_SCHEMA: &str = "ne-metrics-report/v2";

/// Schema tag of the `--bench-out` regression baseline.
pub const BENCH_SCHEMA: &str = "ne-bench/v1";

/// Prints a header banner for an experiment.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len().max(20));
    println!("{line}\n{title}\n{line}");
}

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Collects labeled per-run [`MachineMetrics`] snapshots for export.
///
/// Construct one per binary, [`push_run`] a snapshot for every
/// configuration measured, and call [`finish`] last: if the user passed
/// `--metrics-out <path>` the report lands there as JSON.
///
/// [`push_run`]: MetricsReport::push_run
/// [`finish`]: MetricsReport::finish
#[derive(Debug, Clone)]
pub struct MetricsReport {
    experiment: String,
    runs: Vec<(String, MachineMetrics)>,
}

impl MetricsReport {
    /// Creates an empty report for the named experiment (e.g. `"fig7"`).
    pub fn new(experiment: &str) -> MetricsReport {
        MetricsReport {
            experiment: experiment.to_string(),
            runs: Vec::new(),
        }
    }

    /// Appends one run's snapshot under `label`.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot fails [`MachineMetrics::check`] — a failed
    /// counter identity means the experiment's accounting is broken, and
    /// exporting it would be worse than crashing.
    pub fn push_run(&mut self, label: &str, metrics: MachineMetrics) {
        if let Err(e) = metrics.check() {
            panic!("metrics check failed for run '{label}': {e}");
        }
        self.runs.push((label.to_string(), metrics));
    }

    /// Number of runs collected so far.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no runs were collected.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Renders the report as pretty-printed JSON with a fixed key order
    /// (schema [`REPORT_SCHEMA`]); each run embeds its full
    /// [`ne_sgx::metrics::METRICS_SCHEMA`] snapshot.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{REPORT_SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            self.experiment.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        out.push_str("  \"runs\": [\n");
        for (i, (label, m)) in self.runs.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"label\": \"{}\",\n",
                label.replace('\\', "\\\\").replace('"', "\\\"")
            ));
            out.push_str(&format!(
                "      \"metrics\": {}\n",
                indent_tail(&m.to_json(), 6)
            ));
            out.push_str("    }");
            out.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}");
        out.push('\n');
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// I/O errors creating or writing the file.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Renders the distilled regression baseline (schema
    /// [`BENCH_SCHEMA`]): per run, the total cycles, the transition
    /// counters, and a merged-across-levels summary of every non-empty
    /// latency histogram. Every leaf is numeric, so `ne-bench-compare`
    /// can diff two of these with per-metric relative thresholds.
    pub fn to_bench_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            json_escape(&self.experiment)
        ));
        out.push_str("  \"runs\": [\n");
        for (i, (label, m)) in self.runs.iter().enumerate() {
            let s = &m.stats;
            out.push_str("    {\n");
            out.push_str(&format!("      \"label\": \"{}\",\n", json_escape(label)));
            out.push_str(&format!("      \"total_cycles\": {},\n", m.total_cycles));
            // Serving-layer runs record end-to-end request latency; for
            // those, distill a throughput number too: completed requests
            // over the wall-clock of the busiest core. Runs without
            // request samples (all the figure/table benchmarks) are
            // byte-identical to before this key existed.
            if let Some(rps) = throughput_rps(m) {
                out.push_str(&format!("      \"throughput_rps\": {rps:.2},\n"));
            }
            out.push_str("      \"transitions\": {");
            out.push_str(
                &[
                    ("ecalls", s.ecalls),
                    ("ocalls", s.ocalls),
                    ("n_ecalls", s.n_ecalls),
                    ("n_ocalls", s.n_ocalls),
                    ("aexes", s.aexes),
                    ("eresumes", s.eresumes),
                    ("switchless_ocalls", s.switchless_ocalls),
                    ("total", s.total_transitions()),
                ]
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", "),
            );
            out.push_str("},\n");
            let merged = merged_histograms(m);
            if merged.is_empty() {
                out.push_str("      \"histograms\": {}\n");
            } else {
                out.push_str("      \"histograms\": {\n");
                for (j, (event, h)) in merged.iter().enumerate() {
                    let s = h.summary();
                    out.push_str(&format!(
                        "        \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \
                         \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}{}\n",
                        event.name(),
                        s.count,
                        s.sum,
                        s.min,
                        s.max,
                        s.p50,
                        s.p90,
                        s.p99,
                        if j + 1 < merged.len() { "," } else { "" }
                    ));
                }
                out.push_str("      }\n");
            }
            out.push_str("    }");
            out.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders latency histogram tables for every run (the
    /// `--profile-out` payload; also printed by `ne-profile report`).
    pub fn profile_text(&self) -> String {
        let mut out = String::new();
        for (label, m) in &self.runs {
            out.push_str(&format!("run: {label}\n"));
            if m.profile.is_empty() {
                out.push_str("  (no latency samples recorded)\n\n");
                continue;
            }
            out.push_str(&profile_table(m).render());
            out.push('\n');
        }
        out
    }

    /// Writes the requested exports — `--metrics-out`, `--bench-out`,
    /// `--profile-out` — and prints where each went. Call this last.
    ///
    /// # Panics
    ///
    /// Panics if a requested file cannot be written — an export that
    /// silently vanishes is worse than an abort.
    pub fn finish(&self) {
        let write = |what: &str, path: &Path, payload: &str| {
            std::fs::write(path, payload)
                .unwrap_or_else(|e| panic!("cannot write {what} to {}: {e}", path.display()));
            println!(
                "\n{what}: wrote {} run(s) to {}",
                self.runs.len(),
                path.display()
            );
        };
        if let Some(path) = metrics_out_path() {
            write("metrics", &path, &self.to_json());
        }
        if let Some(path) = bench_out_path() {
            write("bench baseline", &path, &self.to_bench_json());
        }
        if let Some(path) = profile_out_path() {
            write("latency profile", &path, &self.profile_text());
        }
    }
}

/// Requests per (simulated) second of a snapshot: the count of the
/// end-to-end [`ProfileEvent::Request`] histogram over the wall-clock of
/// the busiest core. `None` when the run recorded no request latencies —
/// i.e. for every benchmark that is not a serving-layer run.
pub fn throughput_rps(m: &MachineMetrics) -> Option<f64> {
    let requests: u64 = m
        .profile
        .iter()
        .filter(|e| e.event == ProfileEvent::Request)
        .map(|e| e.hist.count())
        .sum();
    let wall = m.cores.iter().map(|c| c.cycles).max().unwrap_or(0);
    (requests > 0 && wall > 0).then(|| requests as f64 * m.clock_ghz * 1e9 / wall as f64)
}

/// Non-empty per-event histograms of a snapshot, merged across hierarchy
/// levels, in [`ProfileEvent::ALL`] order.
pub fn merged_histograms(m: &MachineMetrics) -> Vec<(ProfileEvent, Histogram)> {
    ProfileEvent::ALL
        .into_iter()
        .filter_map(|event| {
            let mut merged = Histogram::new();
            for e in m.profile.iter().filter(|e| e.event == event) {
                merged.merge(&e.hist);
            }
            (!merged.is_empty()).then_some((event, merged))
        })
        .collect()
}

/// Renders one snapshot's latency histograms as a table: one row per
/// (event, level) entry plus a merged `*` row per event with several
/// levels, columns count/mean/p50/p90/p99/max (cycles).
pub fn profile_table(m: &MachineMetrics) -> Table {
    let mut t = Table::new(&[
        "event", "level", "count", "mean", "p50", "p90", "p99", "max",
    ]);
    let mut push = |event: &str, level: &str, h: &Histogram| {
        let s = h.summary();
        t.row(&[
            event.to_string(),
            level.to_string(),
            s.count.to_string(),
            f2(h.mean()),
            s.p50.to_string(),
            s.p90.to_string(),
            s.p99.to_string(),
            s.max.to_string(),
        ]);
    };
    for event in ProfileEvent::ALL {
        let entries: Vec<_> = m.profile.iter().filter(|e| e.event == event).collect();
        for e in &entries {
            push(event.name(), e.level.name(), &e.hist);
        }
        if entries.len() > 1 {
            let mut merged = Histogram::new();
            for e in &entries {
                merged.merge(&e.hist);
            }
            push(event.name(), "*", &merged);
        }
    }
    t
}

/// Writes the traced run to `--trace-out` (Chrome Trace JSON; folded
/// stacks beside it at `<path>.folded`), if the flag was given. Pass the
/// bundle of the run the binary traced, or `None` when the experiment
/// has no traceable machine — the flag is then acknowledged with a note
/// instead of being silently ignored.
///
/// # Panics
///
/// Panics if a requested file cannot be written.
pub fn write_trace(bundle: Option<&TraceBundle>) {
    let Some(path) = trace_out_path() else {
        return;
    };
    match bundle {
        Some(b) => {
            std::fs::write(&path, &b.chrome_json)
                .unwrap_or_else(|e| panic!("cannot write trace to {}: {e}", path.display()));
            let folded = PathBuf::from(format!("{}.folded", path.display()));
            std::fs::write(&folded, &b.folded)
                .unwrap_or_else(|e| panic!("cannot write stacks to {}: {e}", folded.display()));
            println!(
                "\ntrace: {} span(s) to {} (+ {}.folded); \
                 truncated {}, unfinished {}, ring dropped {}",
                b.spans,
                path.display(),
                path.display(),
                b.truncated,
                b.unfinished,
                b.trace_dropped
            );
        }
        None => println!("\ntrace: this experiment produced no traced machine; nothing written"),
    }
}

/// Writes one trace bundle per shard of a sharded run, if `--trace-out`
/// was given. Shard 0 lands at the flag's path exactly where the
/// unsharded path would write (so a one-shard run is byte-identical);
/// shard `k > 0` lands beside it at `<path>.shard<k>` with its folded
/// stacks at `<path>.shard<k>.folded`.
///
/// # Panics
///
/// Panics if a requested file cannot be written.
pub fn write_shard_traces(bundles: &[TraceBundle]) {
    let Some(path) = trace_out_path() else {
        return;
    };
    write_trace(bundles.first());
    for (k, b) in bundles.iter().enumerate().skip(1) {
        let shard_path = PathBuf::from(format!("{}.shard{k}", path.display()));
        std::fs::write(&shard_path, &b.chrome_json)
            .unwrap_or_else(|e| panic!("cannot write trace to {}: {e}", shard_path.display()));
        let folded = PathBuf::from(format!("{}.folded", shard_path.display()));
        std::fs::write(&folded, &b.folded)
            .unwrap_or_else(|e| panic!("cannot write stacks to {}: {e}", folded.display()));
        println!(
            "trace: shard {k}: {} span(s) to {} (+ .folded)",
            b.spans,
            shard_path.display()
        );
    }
}

/// Parses `--tenants-out <path>` — the canonical per-tenant export
/// (`ne-tenants/v1`) that CI's `shard-smoke` job byte-diffs across shard
/// counts.
pub fn tenants_out_path() -> Option<PathBuf> {
    flag_path("--tenants-out")
}

/// Parses `--timeline-out <path>` — destination for the `ne-obs/v1`
/// windowed timeline export (CI's `timeline-smoke` job byte-diffs two
/// same-seed chaos runs of it).
pub fn timeline_out_path() -> Option<PathBuf> {
    flag_path("--timeline-out")
}

/// Parses a string-valued flag (`--flag v` or `--flag=v`) from the
/// process arguments.
pub fn flag_str(flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(p) = a.strip_prefix(&prefix) {
            return Some(p.to_string());
        }
    }
    None
}

fn flag_path(flag: &str) -> Option<PathBuf> {
    flag_str(flag).map(PathBuf::from)
}

/// Parses an integer flag (`--flag 7` or `--flag=7`) from the process
/// arguments. Used by the experiment binaries for `--seed` and the
/// load-generator knobs, so every binary parses them identically.
///
/// # Panics
///
/// Panics with a clear message when the value is present but not an
/// unsigned integer — a silently ignored seed would make a "seeded" run
/// unreproducible.
pub fn flag_u64(flag: &str) -> Option<u64> {
    flag_str(flag).map(|v| {
        v.parse::<u64>()
            .unwrap_or_else(|_| panic!("{flag} expects an unsigned integer, got '{v}'"))
    })
}

/// Parses `--metrics-out <path>` from the process arguments.
pub fn metrics_out_path() -> Option<PathBuf> {
    flag_path("--metrics-out")
}

/// Parses `--bench-out <path>` from the process arguments.
pub fn bench_out_path() -> Option<PathBuf> {
    flag_path("--bench-out")
}

/// Parses `--profile-out <path>` from the process arguments.
pub fn profile_out_path() -> Option<PathBuf> {
    flag_path("--profile-out")
}

/// Parses `--trace-out <path>` from the process arguments.
pub fn trace_out_path() -> Option<PathBuf> {
    flag_path("--trace-out")
}

/// True when any flag needing an event-traced run was given
/// (`--trace-out`); binaries use this to enable tracing on the
/// representative run they export.
pub fn want_trace() -> bool {
    trace_out_path().is_some()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Re-indents every line of a pretty-printed JSON blob after the first by
/// `by` extra spaces, so it nests cleanly inside an outer document.
fn indent_tail(json: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    let mut lines = json.lines();
    let mut out = String::with_capacity(json.len() + 256);
    if let Some(first) = lines.next() {
        out.push_str(first);
    }
    for line in lines {
        out.push('\n');
        out.push_str(&pad);
        out.push_str(line);
    }
    out
}

/// Renders a per-enclave cycle-breakdown table from a snapshot: one row
/// per attribution bucket (untrusted first), one column per
/// [`CycleCategory`], plus a total column. The row totals sum to the
/// machine's `total_cycles` — [`MachineMetrics::check`] enforces it.
pub fn breakdown_table(m: &MachineMetrics) -> Table {
    let mut headers: Vec<&str> = vec!["Context"];
    headers.extend(CycleCategory::ALL.iter().map(|c| c.name()));
    headers.push("total");
    let mut t = Table::new(&headers);
    for e in &m.enclaves {
        let ctx = match e.eid {
            None => "untrusted".to_string(),
            Some(id) if e.outer_eids.is_empty() => format!("enclave {id} (outer)"),
            Some(id) => format!(
                "enclave {id} (inner of {})",
                e.outer_eids
                    .iter()
                    .map(|o| o.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        };
        let mut row = vec![ctx];
        row.extend(
            CycleCategory::ALL
                .iter()
                .map(|&c| e.breakdown.get(c).to_string()),
        );
        row.push(e.breakdown.total().to_string());
        t.row(&row);
    }
    let mut total_row = vec!["machine total".to_string()];
    let mut machine = ne_sgx::metrics::CycleBreakdown::default();
    for e in &m.enclaves {
        machine.merge(&e.breakdown);
    }
    total_row.extend(
        CycleCategory::ALL
            .iter()
            .map(|&c| machine.get(c).to_string()),
    );
    total_row.push(m.total_cycles.to_string());
    t.row(&total_row);
    t
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ne_sgx::metrics::METRICS_SCHEMA;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("| name   | value |"));
        assert!(r.contains("| longer | 2     |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    fn snapshot() -> MachineMetrics {
        let mut m = ne_sgx::machine::Machine::new(ne_sgx::config::HwConfig::small());
        let va = m.os_alloc_untrusted(ne_sgx::enclave::ProcessId(0), 1);
        m.write(0, va, b"payload").unwrap();
        m.metrics()
    }

    #[test]
    fn report_json_is_schema_stable() {
        let mut r = MetricsReport::new("unit");
        r.push_run("a", snapshot());
        r.push_run("b", snapshot());
        let j = r.to_json();
        assert!(j.starts_with(&format!("{{\n  \"schema\": \"{REPORT_SCHEMA}\"")));
        assert!(j.starts_with("{\n  \"schema\": \"ne-metrics-report/v2\""));
        assert!(j.contains("\"experiment\": \"unit\""));
        assert!(j.contains("\"label\": \"a\""));
        assert!(j.contains(&format!("\"schema\": \"{METRICS_SCHEMA}\"")));
        assert_eq!(r.len(), 2);
        // Identical inputs render byte-identically.
        let mut r2 = MetricsReport::new("unit");
        r2.push_run("a", snapshot());
        r2.push_run("b", snapshot());
        assert_eq!(j, r2.to_json());
    }

    #[test]
    fn bench_json_distills_counters_and_histograms() {
        let mut r = MetricsReport::new("unit");
        r.push_run("a", snapshot());
        let j = r.to_bench_json();
        assert!(j.starts_with(&format!("{{\n  \"schema\": \"{BENCH_SCHEMA}\"")));
        assert!(j.contains("\"total_cycles\": "));
        assert!(j.contains("\"transitions\": {\"ecalls\": 0,"));
        // The snapshot's write took TLB misses, so that histogram exists.
        assert!(j.contains("\"tlb_miss\": {\"count\": "), "{j}");
        // Identical inputs render byte-identically (baselines are diffable).
        let mut r2 = MetricsReport::new("unit");
        r2.push_run("a", snapshot());
        assert_eq!(j, r2.to_bench_json());
    }

    #[test]
    fn bench_json_adds_throughput_for_serving_runs_only() {
        use ne_sgx::profile::HierLevel;
        let mut m = ne_sgx::machine::Machine::new(ne_sgx::config::HwConfig::small());
        let va = m.os_alloc_untrusted(ne_sgx::enclave::ProcessId(0), 1);
        m.write(0, va, b"payload").unwrap();
        m.profile_record(ProfileEvent::Request, HierLevel::Untrusted, 1000);
        let metrics = m.metrics();
        assert!(throughput_rps(&metrics).unwrap() > 0.0);
        let mut r = MetricsReport::new("unit");
        r.push_run("serve", metrics);
        assert!(r.to_bench_json().contains("\"throughput_rps\": "));
        // Runs without request samples stay byte-free of the key, so
        // committed figure/table baselines are unchanged.
        let mut r2 = MetricsReport::new("unit");
        r2.push_run("plain", snapshot());
        assert!(!r2.to_bench_json().contains("throughput_rps"));
        assert!(throughput_rps(&snapshot()).is_none());
    }

    #[test]
    fn profile_text_renders_tables() {
        let mut r = MetricsReport::new("unit");
        r.push_run("a", snapshot());
        let text = r.profile_text();
        assert!(text.contains("run: a"));
        assert!(text.contains("tlb_miss"));
        assert!(text.contains("p99"));
    }

    #[test]
    #[should_panic(expected = "metrics check failed")]
    fn report_rejects_broken_accounting() {
        let mut m = snapshot();
        m.total_cycles += 1;
        MetricsReport::new("unit").push_run("bad", m);
    }

    #[test]
    fn breakdown_table_covers_every_bucket() {
        let m = snapshot();
        let rendered = breakdown_table(&m).render();
        assert!(rendered.contains("untrusted"));
        assert!(rendered.contains("machine total"));
        assert!(rendered.contains("tlb_walk"));
    }
}
