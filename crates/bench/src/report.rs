//! Table-formatting helpers for the experiment binaries.

/// Prints a header banner for an experiment.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len().max(20));
    println!("{line}\n{title}\n{line}");
}

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("| name   | value |"));
        assert!(r.contains("| longer | 2     |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
