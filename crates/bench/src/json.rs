//! A minimal JSON parser for the compare/validation tooling.
//!
//! The workspace is offline-only (no serde), but `ne-bench-compare` must
//! read `ne-bench/v1` baselines and the trace well-formedness test must
//! parse Chrome Trace Event output. This is a small recursive-descent
//! parser covering exactly the JSON those emitters produce (and standard
//! JSON generally): objects, arrays, strings with `\"`/`\\`/`\n`-style
//! escapes, numbers, booleans, null. Object key order is preserved so
//! error messages can point at the offending entry.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the emitters never exceed `f64`'s exact-integer range).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable description with the byte offset of the first
/// syntax error, including trailing garbage after the document.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape '\\{}'", *other as char)),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (input is a valid &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("nulL").is_err());
    }

    #[test]
    fn as_u64_is_strict() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn round_trips_a_real_metrics_snapshot() {
        let mut m = ne_sgx::machine::Machine::new(ne_sgx::config::HwConfig::small());
        let va = m.os_alloc_untrusted(ne_sgx::enclave::ProcessId(0), 1);
        m.write(0, va, b"x").unwrap();
        let v = parse(&m.metrics().to_json()).unwrap();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some(ne_sgx::metrics::METRICS_SCHEMA)
        );
        assert!(v.get("total_cycles").unwrap().as_u64().unwrap() > 0);
    }
}
