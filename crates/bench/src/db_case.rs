//! Table VI: the SQLite/YCSB case study (§ VI-B).
//!
//! "A shared SQLite service runs in an outer enclave. A client sends
//! queries to an inner enclave, the inner enclave parses the queries and
//! encrypts data, and the inner enclave sends query requests to the SQLite
//! service." The baseline runs the whole stack in one enclave.
//!
//! The SQL engine cost is charged per query at a rate modelling SQLite's
//! parse/plan/B-tree work on the paper's testbed, so the ratio between the
//! configurations is governed by the extra inner-enclave work and
//! transitions — "less than 2% overheads", as Table VI reports.

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn};
use ne_db::{Database, Workload, WorkloadMix};
use ne_sgx::config::HwConfig;
use ne_sgx::error::SgxError;
use ne_sgx::spantree::TraceBundle;
use std::sync::{Arc, Mutex};

/// Cycles per query of SQL engine work (parse, plan, B-tree traversal,
/// result marshalling) — ~100 µs at 3.6 GHz, in line with in-enclave
/// SQLite under YCSB.
const ENGINE_CYCLES_PER_QUERY: u64 = 360_000;
/// Extra engine cycles per result/parameter byte.
const ENGINE_CYCLES_PER_BYTE: u64 = 2;

/// Result of one Table VI run.
#[derive(Debug, Clone)]
pub struct DbCaseResult {
    /// Queries executed.
    pub ops: usize,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Nested transitions taken.
    pub n_calls: u64,
    /// Clock for conversions.
    pub clock_ghz: f64,
    /// Machine snapshot after the measured query phase.
    pub metrics: ne_sgx::metrics::MachineMetrics,
    /// Span-tree exports of the measured query phase, when tracing was
    /// requested.
    pub trace: Option<TraceBundle>,
}

impl DbCaseResult {
    /// Throughput in operations per simulated second.
    pub fn ops_per_second(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ops as f64 / (self.cycles as f64 / (self.clock_ghz * 1e9))
    }
}

fn engine_charge(sql_len: usize, result_len: usize) -> u64 {
    ENGINE_CYCLES_PER_QUERY + ENGINE_CYCLES_PER_BYTE * (sql_len + result_len) as u64
}

fn gcm_cost(cfg: &HwConfig, len: usize) -> u64 {
    cfg.cost.gcm_setup + cfg.cost.gcm_per_byte * len as u64
}

/// Builds the SQLite service in nested or monolithic configuration.
///
/// # Errors
///
/// Enclave plumbing errors.
pub fn build_db_app(nested: bool, trace: bool) -> Result<NestedApp, SgxError> {
    let db: Arc<Mutex<Database>> = Arc::new(Mutex::new(Database::new()));
    let mut hw = HwConfig::testbed();
    hw.trace_events = trace;
    let mut app = NestedApp::new(hw);
    let exec_body = |db: Arc<Mutex<Database>>| -> TrustedFn {
        Arc::new(move |cx, args| {
            let sql = std::str::from_utf8(args)
                .map_err(|_| SgxError::GeneralProtection("bad utf-8 query".into()))?;
            let result = db
                .lock()
                .expect("poisoned")
                .execute(sql)
                .map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
            let mut out = Vec::new();
            for row in &result.rows {
                for v in row {
                    out.extend_from_slice(v.to_string().as_bytes());
                }
            }
            cx.charge(engine_charge(args.len(), out.len()));
            Ok(out)
        })
    };
    // [port:begin sqlite]
    // Nested-enclave port of the SQLite service: the engine becomes the
    // shared outer enclave; the per-client proxy (parse + encrypt) runs in
    // an inner enclave and forwards via n_ocall.
    if nested {
        let engine = EnclaveImage::new("sqlite", b"service-provider")
            .code_pages(32)
            .heap_pages(8)
            .edl(Edl::new());
        app.load(engine, [("sql_exec".to_string(), exec_body(db))])?;
        let proxy = EnclaveImage::new("client-proxy", b"tenant")
            .heap_pages(4)
            .edl(Edl::new().ecall("query").n_ocall("sql_exec"));
        let query: TrustedFn = Arc::new(move |cx, args| {
            // Parse the query and encrypt the client's data in the inner
            // enclave before it crosses into the shared service.
            ne_db::parse(
                std::str::from_utf8(args)
                    .map_err(|_| SgxError::GeneralProtection("bad utf-8 query".into()))?,
            )
            .map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
            cx.charge(gcm_cost(cx.machine.config(), args.len()));
            cx.n_ocall("sql_exec", args)
        });
        app.load(proxy, [("query".to_string(), query)])?;
        app.associate("client-proxy", "sqlite")?;
    }
    // [port:end sqlite]
    else {
        let img = EnclaveImage::new("client-proxy", b"service-provider")
            .code_pages(40)
            .heap_pages(8)
            .edl(Edl::new().ecall("query"));
        let exec = exec_body(db);
        let query: TrustedFn = Arc::new(move |cx, args| {
            ne_db::parse(
                std::str::from_utf8(args)
                    .map_err(|_| SgxError::GeneralProtection("bad utf-8 query".into()))?,
            )
            .map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
            cx.charge(gcm_cost(cx.machine.config(), args.len()));
            exec(cx, args)
        });
        app.load(img, [("query".to_string(), query)])?;
    }
    Ok(app)
}

/// The workload seed every Table VI surface used before it became
/// selectable; the `--seed` default, so unseeded runs reproduce the
/// committed numbers exactly.
pub const DEFAULT_DB_SEED: u64 = 0xDB;

/// Runs one Table VI mix: pre-loads `records` rows, then measures
/// `ops` queries generated from `seed`.
///
/// # Errors
///
/// Enclave or SQL failures.
pub fn run_db_case(
    mix: WorkloadMix,
    records: usize,
    ops: usize,
    nested: bool,
    trace: bool,
    seed: u64,
) -> Result<DbCaseResult, SgxError> {
    let workload = Workload::generate(mix, records, ops, seed);
    let mut app = build_db_app(nested, trace)?;
    app.ecall(0, "client-proxy", "query", workload.create.as_bytes())?;
    for stmt in &workload.load {
        app.ecall(0, "client-proxy", "query", stmt.as_bytes())?;
    }
    app.machine.reset_metrics();
    for stmt in &workload.operations {
        app.ecall(0, "client-proxy", "query", stmt.as_bytes())?;
    }
    let stats = app.machine.stats();
    Ok(DbCaseResult {
        ops,
        cycles: app.machine.cycles(0),
        n_calls: stats.n_ecalls + stats.n_ocalls,
        clock_ghz: app.machine.config().cost.clock_ghz,
        metrics: app.machine.metrics(),
        trace: trace.then(|| TraceBundle::capture(&app.machine)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_execute_in_both_modes() {
        for nested in [false, true] {
            let r = run_db_case(
                WorkloadMix::Select100,
                20,
                50,
                nested,
                false,
                DEFAULT_DB_SEED,
            )
            .unwrap();
            assert_eq!(r.ops, 50);
            assert!(r.cycles > 0);
            assert!(r.ops_per_second() > 0.0);
        }
    }

    #[test]
    fn nested_uses_n_calls() {
        let r = run_db_case(WorkloadMix::Select100, 10, 20, true, false, DEFAULT_DB_SEED).unwrap();
        assert_eq!(r.n_calls, 2 * 20, "one n_ocall round trip per query");
        let r = run_db_case(
            WorkloadMix::Select100,
            10,
            20,
            false,
            false,
            DEFAULT_DB_SEED,
        )
        .unwrap();
        assert_eq!(r.n_calls, 0);
    }

    #[test]
    fn table6_shape_under_two_percent_overhead() {
        for mix in WorkloadMix::ALL {
            let mono = run_db_case(mix, 30, 100, false, false, DEFAULT_DB_SEED).unwrap();
            let nested = run_db_case(mix, 30, 100, true, false, DEFAULT_DB_SEED).unwrap();
            let normalized = mono.cycles as f64 / nested.cycles as f64;
            assert!(
                normalized > 0.96 && normalized <= 1.0,
                "{}: normalized throughput {normalized}",
                mix.name()
            );
        }
    }

    #[test]
    fn bad_query_surfaces_error() {
        let mut app = build_db_app(true, false).unwrap();
        let err = app
            .ecall(0, "client-proxy", "query", b"DROP EVERYTHING")
            .unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }
}
