//! Fig. 11: intra-enclave (MEE) vs. untrusted-memory AES-GCM channels.
//!
//! "We compare the performance of intra-enclave communication to
//! communication through the untrusted memory ... the throughput of the
//! intra-enclave channel (MEE) is much higher than the conventional
//! enclave-to-enclave channel via AES-GCM (GCM), especially when the
//! footprint size is 8 MB, since memory encryption does not occur when the
//! data fit inside the on-chip caches."
//!
//! The *footprint* is the ring-buffer size the producer/consumer rotate
//! through; when it fits in the 8 MiB LLC the MEE path never touches DRAM.

use ne_core::channel::UntrustedChannel;
use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::NestedApp;
use ne_sgx::config::HwConfig;
use ne_sgx::error::SgxError;
use ne_sgx::spantree::TraceBundle;

/// Result of one channel run.
#[derive(Debug, Clone)]
pub struct ChannelResult {
    /// Payload bytes moved (send + receive counted once).
    pub bytes: u64,
    /// Simulated cycles on the communicating core.
    pub cycles: u64,
    /// PRM cache lines the MEE actually encrypted/decrypted.
    pub mee_lines: u64,
    /// Clock for conversions.
    pub clock_ghz: f64,
    /// Machine snapshot taken while still inside the enclave (the run
    /// measures steady-state channel traffic, not the surrounding
    /// transitions), so `cores_in_enclave_mode` is nonzero in it.
    pub metrics: ne_sgx::metrics::MachineMetrics,
    /// Span-tree exports, when tracing was requested. Captured at the
    /// same instant as `metrics`, so the enclosing ecall span shows as
    /// unfinished in it — by design, not by accident.
    pub trace: Option<TraceBundle>,
}

impl ChannelResult {
    /// Throughput in MB per simulated second.
    pub fn throughput_mbps(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.bytes as f64 / 1e6) / (self.cycles as f64 / (self.clock_ghz * 1e9))
    }
}

fn heap_pages_for(footprint: usize) -> u64 {
    (footprint as u64 + 4096 * 4) / 4096 + 4
}

/// Measures the nested-enclave channel exactly as the paper's hardware
/// experiment mimics it: "two threads in an enclave communicate directly
/// by writing and reading the memory within the enclave". Each message is
/// a payload write plus a flag-line handoff (one producer store, one
/// consumer poll+load), rotating through a `footprint`-byte region of the
/// outer enclave's heap until `total_bytes` have moved.
///
/// # Errors
///
/// Enclave plumbing errors (EPC exhaustion for huge footprints).
pub fn run_outer_channel(
    chunk: usize,
    footprint: usize,
    total_bytes: u64,
    trace: bool,
) -> Result<ChannelResult, SgxError> {
    assert!(
        chunk + 64 <= footprint,
        "chunk + flag line must fit the region"
    );
    let mut cfg = HwConfig::testbed();
    cfg.prm_pages = cfg.prm_pages.max(heap_pages_for(footprint) * 4);
    cfg.trace_events = trace;
    let mut app = NestedApp::new(cfg);
    let hub = EnclaveImage::new("hub", b"provider")
        .heap_pages(heap_pages_for(footprint))
        .edl(Edl::new());
    app.load(hub, [])?;
    let peer = EnclaveImage::new("peer", b"tenant")
        .heap_pages(2)
        .edl(Edl::new());
    app.load(peer, [])?;
    app.associate("peer", "hub")?;
    let eid = app.eid("peer")?;
    let tcs = app.layout("peer")?.base;
    app.machine.eenter(0, eid, tcs)?;
    let result = {
        let mut cx = app.enclave_ctx(0, "peer");
        let region = cx.heap_base_of("hub")?;
        // Messages are slot-aligned: payload followed by a 64-byte flag
        // line (so flag traffic models the producer/consumer handoff).
        let slot = (chunk + 64 + 63) & !63;
        let slots = (footprint / slot).max(1);
        let msg = vec![0xC3u8; chunk];
        cx.machine.reset_metrics();
        let mut moved = 0u64;
        let mut i = 0u64;
        while moved < total_bytes {
            let base = region.add((i % slots as u64) * slot as u64);
            // Producer: payload store + flag release.
            cx.write(base, &msg)?;
            cx.write(base.add(chunk as u64), &1u64.to_le_bytes())?;
            // Consumer: flag acquire + payload load.
            let flag = cx.read(base.add(chunk as u64), 8)?;
            debug_assert_eq!(flag[0], 1);
            let got = cx.read(base, chunk)?;
            debug_assert_eq!(got.len(), chunk);
            moved += chunk as u64;
            i += 1;
        }
        let mee = cx.machine.mee();
        ChannelResult {
            bytes: moved,
            cycles: cx.machine.cycles(0),
            mee_lines: mee.lines_decrypted() + mee.lines_encrypted(),
            clock_ghz: cx.machine.config().cost.clock_ghz,
            metrics: cx.machine.metrics(),
            trace: trace.then(|| TraceBundle::capture(cx.machine)),
        }
    };
    app.machine.eexit(0)?;
    Ok(result)
}

/// Measures the monolithic baseline: the same ring in untrusted memory,
/// every message sealed/opened with AES-GCM.
///
/// # Errors
///
/// Enclave plumbing errors.
pub fn run_gcm_channel(
    chunk: usize,
    footprint: usize,
    total_bytes: u64,
    trace: bool,
) -> Result<ChannelResult, SgxError> {
    // Sealed messages carry a 16-byte tag; size the ring accordingly.
    assert!(chunk + 20 <= footprint, "chunk must fit the ring");
    let mut cfg = HwConfig::testbed();
    cfg.trace_events = trace;
    let mut app = NestedApp::new(cfg);
    let img = EnclaveImage::new("tx", b"owner")
        .heap_pages(2)
        .edl(Edl::new());
    app.load(img, [])?;
    let mut channel = app.untrusted(0, |cx| {
        UntrustedChannel::create(cx, [7; 16], footprint as u64)
    });
    let eid = app.eid("tx")?;
    let tcs = app.layout("tx")?.base;
    app.machine.eenter(0, eid, tcs)?;
    let result = {
        let mut cx = app.enclave_ctx(0, "tx");
        let msg = vec![0xC3u8; chunk];
        cx.machine.reset_metrics();
        let mut moved = 0u64;
        while moved < total_bytes {
            channel.send(&mut cx, &msg)?;
            let got = channel.recv(&mut cx)?.expect("just sent");
            debug_assert_eq!(got.len(), chunk);
            moved += chunk as u64;
        }
        let mee = cx.machine.mee();
        ChannelResult {
            bytes: moved,
            cycles: cx.machine.cycles(0),
            mee_lines: mee.lines_decrypted() + mee.lines_encrypted(),
            clock_ghz: cx.machine.config().cost.clock_ghz,
            metrics: cx.machine.metrics(),
            trace: trace.then(|| TraceBundle::capture(cx.machine)),
        }
    };
    app.machine.eexit(0)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIT: usize = 1 << 20; // 1 MiB: fits the 8 MiB LLC
    const SPILL: usize = 48 << 20; // 48 MiB: thrashes it

    #[test]
    fn mee_beats_gcm_at_small_chunks() {
        let total = 1 << 20;
        let mee = run_outer_channel(128, FIT, total, false).unwrap();
        let gcm = run_gcm_channel(128, FIT, total, false).unwrap();
        let speedup = mee.throughput_mbps() / gcm.throughput_mbps();
        // Paper: "up to 29.9 times better" for small chunks.
        assert!(speedup > 5.0, "speedup {speedup}");
    }

    #[test]
    fn gap_narrows_with_chunk_size() {
        let total = 4 << 20;
        let speedup = |chunk: usize| {
            let mee = run_outer_channel(chunk, FIT, total, false).unwrap();
            let gcm = run_gcm_channel(chunk, FIT, total, false).unwrap();
            mee.throughput_mbps() / gcm.throughput_mbps()
        };
        let small = speedup(128);
        let large = speedup(16384);
        assert!(
            small > large && large > 1.0,
            "small {small}, large {large}: GCM amortizes with chunk size"
        );
    }

    #[test]
    fn cache_resident_footprint_skips_the_mee() {
        // Enough traffic that the fit case loops over its ring many times
        // (steady-state hits) while the spilled case keeps missing.
        let total = 12 << 20;
        let fit = run_outer_channel(4096, FIT, total, false).unwrap();
        let spill = run_outer_channel(4096, SPILL, total, false).unwrap();
        assert!(
            fit.mee_lines < spill.mee_lines / 10,
            "cache-resident: {} lines, spilled: {} lines",
            fit.mee_lines,
            spill.mee_lines
        );
        assert!(fit.throughput_mbps() > spill.throughput_mbps());
    }

    #[test]
    fn gcm_pays_crypto_even_when_cache_resident() {
        // "AES-GCM needs to perform encryption even if the footprint size
        // fits in the cache."
        let total = 8 << 20;
        let gcm_fit = run_gcm_channel(4096, FIT, total, false).unwrap();
        let mee_fit = run_outer_channel(4096, FIT, total, false).unwrap();
        assert!(mee_fit.throughput_mbps() > 2.0 * gcm_fit.throughput_mbps());
    }

    #[test]
    fn untrusted_ring_never_touches_the_mee() {
        let r = run_gcm_channel(1024, FIT, 1 << 18, false).unwrap();
        assert_eq!(r.mee_lines, 0, "untrusted memory is outside the PRM");
    }
}
