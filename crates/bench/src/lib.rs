#![warn(missing_docs)]

//! # ne-bench — experiment harnesses for every table and figure
//!
//! Each module reproduces one piece of the paper's evaluation; the
//! binaries in `src/bin/` print the corresponding table/figure and the
//! Criterion benches in `benches/` measure the host-side performance of
//! the same code paths.
//!
//! | paper artifact | module | binary |
//! |---|---|---|
//! | Table II (transition latency) | [`transitions`] | `table2` |
//! | Table III (porting effort) | [`loc`] | `table3` |
//! | Table V (datasets) + Fig. 9 (LibSVM) | [`svm_case`] | `fig9` |
//! | Table VI (SQLite/YCSB) | [`db_case`] | `table6` |
//! | Fig. 7 (echo throughput) | `ne_tls::echo` | `fig7` |
//! | Fig. 10 (loading time/footprint) | [`loading`] | `fig10` |
//! | Fig. 11 (MEE vs GCM channel) | [`channel_exp`] | `fig11` |
//! | § IV-E ablations | [`loading`], [`channel_exp`] | `ablation_evict`, `ablation_depth` |

pub mod channel_exp;
pub mod compare;
pub mod db_case;
pub mod json;
pub mod loading;
pub mod loc;
pub mod report;
pub mod svm_case;
pub mod transitions;
