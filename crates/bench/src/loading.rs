//! Fig. 10: enclave loading time and memory footprint with library
//! sharing (§ VI-C).
//!
//! "The system runs a simple server using the OpenSSL library code (SSL)
//! and application code (App) ... The memory footprint of the OpenSSL code
//! is about 4MB, and that of the application codes is about 1MB."
//!
//! Three configurations over `apps` application instances:
//!
//! * [`LoadMode::BaselineSeparate`] — `apps` SSL enclaves + `apps` App
//!   enclaves (monolithic model, enclave-per-module),
//! * [`LoadMode::BaselineCombined`] — `apps` enclaves each containing
//!   SSL+App (the usual single-enclave deployment),
//! * [`LoadMode::Nested`] — `apps` App inner enclaves sharing
//!   `ssl_outers` SSL outer enclaves via NASSO.

use ne_core::loader::{load_image, EnclaveImage};
use ne_core::nasso::{nasso, AssocPolicy};
use ne_core::validate::NestedValidator;
use ne_sgx::addr::{VirtAddr, PAGE_SIZE};
use ne_sgx::config::HwConfig;
use ne_sgx::enclave::ProcessId;
use ne_sgx::error::SgxError;
use ne_sgx::machine::Machine;
use ne_sgx::spantree::TraceBundle;

/// SSL library image size in pages (~4 MB).
pub const SSL_PAGES: u64 = 1024;
/// Application image size in pages (~1 MB).
pub const APP_PAGES: u64 = 256;

/// The Fig. 10 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Separate SSL and App enclaves, no sharing.
    BaselineSeparate,
    /// One enclave per instance containing both SSL and App.
    BaselineCombined,
    /// Nested: inner App enclaves share outer SSL enclaves.
    Nested,
}

/// Result of one loading run.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// Simulated cycles to create, measure, and initialize everything
    /// (plus NASSO for nested runs).
    pub cycles: u64,
    /// Milliseconds of simulated time.
    pub load_ms: f64,
    /// EPC pages consumed.
    pub epc_pages: usize,
    /// Memory footprint in MB (EPC pages × 4 KiB).
    pub footprint_mb: f64,
    /// Enclaves created.
    pub enclaves: usize,
    /// Machine snapshot after loading (all cycles are [`Lifecycle`] and
    /// measurement work).
    ///
    /// [`Lifecycle`]: ne_sgx::metrics::CycleCategory::Lifecycle
    pub metrics: ne_sgx::metrics::MachineMetrics,
    /// Span-tree exports of the loading phase, when tracing was
    /// requested.
    pub trace: Option<TraceBundle>,
}

fn ssl_image(idx: usize) -> EnclaveImage {
    EnclaveImage::new(&format!("ssl-{idx}"), b"openssl-project")
        .code_pages(SSL_PAGES - 8)
        .heap_pages(7)
}

fn app_image(idx: usize) -> EnclaveImage {
    EnclaveImage::new(&format!("app-{idx}"), b"service-provider")
        .code_pages(APP_PAGES - 8)
        .heap_pages(7)
}

fn combined_image(idx: usize) -> EnclaveImage {
    EnclaveImage::new(&format!("both-{idx}"), b"service-provider")
        .code_pages(SSL_PAGES + APP_PAGES - 8)
        .heap_pages(7)
}

/// Runs one loading experiment.
///
/// # Errors
///
/// EPC exhaustion if the machine's PRM cannot hold the requested
/// configuration.
pub fn run_loading(
    mode: LoadMode,
    apps: usize,
    ssl_outers: usize,
    trace: bool,
) -> Result<LoadResult, SgxError> {
    let mut cfg = HwConfig::testbed();
    // Fig. 10 loads up to ~2.5 GB of enclaves; give the PRM headroom.
    cfg.dram_pages = 8 * 1024 * 1024 / 4 * 2; // 16 GiB
    cfg.prm_pages = 1024 * 1024; // 4 GiB PRM
    cfg.trace_events = trace;
    let mut machine = Machine::with_validator(cfg, Box::new(NestedValidator::new()));
    let mut next_base = 0x1000_0000u64;
    let mut place = |pages: u64| {
        let base = VirtAddr(next_base);
        next_base += pages * PAGE_SIZE as u64;
        base
    };
    machine.reset_metrics();
    match mode {
        LoadMode::BaselineSeparate => {
            for i in 0..apps {
                let ssl = ssl_image(i);
                load_image(&mut machine, ProcessId(0), place(ssl.total_pages()), &ssl)?;
                let app = app_image(i);
                load_image(&mut machine, ProcessId(0), place(app.total_pages()), &app)?;
            }
        }
        LoadMode::BaselineCombined => {
            for i in 0..apps {
                let img = combined_image(i);
                load_image(&mut machine, ProcessId(0), place(img.total_pages()), &img)?;
            }
        }
        LoadMode::Nested => {
            assert!(ssl_outers >= 1, "need at least one outer");
            let mut outers = Vec::with_capacity(ssl_outers);
            for i in 0..ssl_outers {
                let ssl = ssl_image(i);
                let l = load_image(&mut machine, ProcessId(0), place(ssl.total_pages()), &ssl)?;
                outers.push((l.eid, ssl.identity(l.base)));
            }
            // "After we launch all the enclaves, we associate them at once."
            let mut inners = Vec::with_capacity(apps);
            for i in 0..apps {
                let app = app_image(i);
                let l = load_image(&mut machine, ProcessId(0), place(app.total_pages()), &app)?;
                inners.push((l.eid, app.identity(l.base)));
            }
            for (i, (inner_eid, inner_id)) in inners.iter().enumerate() {
                let (outer_eid, outer_id) = &outers[i % ssl_outers];
                nasso(
                    &mut machine,
                    *inner_eid,
                    *outer_eid,
                    outer_id,
                    inner_id,
                    AssocPolicy::SingleOuter,
                )?;
            }
        }
    }
    let cycles = machine.cycles(0);
    let clock = machine.config().cost.clock_ghz;
    let epc_pages = machine.epcm().len();
    Ok(LoadResult {
        cycles,
        load_ms: cycles as f64 / (clock * 1e6),
        epc_pages,
        footprint_mb: epc_pages as f64 * PAGE_SIZE as f64 / 1e6,
        enclaves: machine.enclaves().len(),
        metrics: machine.metrics(),
        trace: trace.then(|| TraceBundle::capture(&machine)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_sharing_reduces_footprint_and_time() {
        let apps = 8;
        let separate = run_loading(LoadMode::BaselineSeparate, apps, 0, false).unwrap();
        let combined = run_loading(LoadMode::BaselineCombined, apps, 0, false).unwrap();
        let shared_1 = run_loading(LoadMode::Nested, apps, 1, false).unwrap();
        let shared_all = run_loading(LoadMode::Nested, apps, apps, false).unwrap();
        // One shared SSL outer: footprint ≈ apps×1MB + 1×4MB, far below
        // both baselines (apps×5MB).
        assert!(shared_1.footprint_mb < 0.5 * combined.footprint_mb);
        assert!(shared_1.cycles < combined.cycles);
        assert!(shared_1.footprint_mb < separate.footprint_mb);
        // No sharing (one outer per app): same order as the baselines.
        let ratio = shared_all.footprint_mb / separate.footprint_mb;
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
        // More sharing helps monotonically.
        let shared_half = run_loading(LoadMode::Nested, apps, apps / 2, false).unwrap();
        assert!(shared_1.footprint_mb < shared_half.footprint_mb);
        assert!(shared_half.footprint_mb < shared_all.footprint_mb);
    }

    #[test]
    fn footprints_match_paper_sizes() {
        // 1 app + 1 ssl ≈ 5 MB.
        let r = run_loading(LoadMode::Nested, 1, 1, false).unwrap();
        assert!(
            (4.9..5.6).contains(&r.footprint_mb),
            "{} MB",
            r.footprint_mb
        );
        assert_eq!(r.enclaves, 2);
    }

    #[test]
    fn separate_and_combined_have_similar_footprints() {
        // "the memory sizes of the two runs in the baseline are similar".
        let a = run_loading(LoadMode::BaselineSeparate, 4, 0, false).unwrap();
        let b = run_loading(LoadMode::BaselineCombined, 4, 0, false).unwrap();
        let ratio = a.footprint_mb / b.footprint_mb;
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn separate_costs_more_load_time_than_combined() {
        // Twice the enclaves → extra ECREATE/EINIT overheads.
        let a = run_loading(LoadMode::BaselineSeparate, 4, 0, false).unwrap();
        let b = run_loading(LoadMode::BaselineCombined, 4, 0, false).unwrap();
        assert!(a.cycles >= b.cycles);
        assert_eq!(a.enclaves, 8);
        assert_eq!(b.enclaves, 4);
    }
}
