//! The bench-regression engine behind `ne-bench-compare`.
//!
//! Compares a fresh `ne-bench/v1` baseline (see
//! [`crate::report::MetricsReport::to_bench_json`]) against a committed
//! one, metric by metric, with a relative threshold. The two failure
//! classes are deliberately distinct:
//!
//! * **Schema violations** — wrong/missing schema string, a run or
//!   metric present in the baseline but absent from the current file,
//!   non-numeric leaves. These mean the comparison itself is meaningless
//!   and always hard-fail (exit 2), even in advisory mode.
//! * **Regressions** — a metric grew past the threshold. Exit 1, or
//!   exit 0 with a report when running advisory.
//!
//! Metrics are flattened to `/`-separated paths
//! (`run/<label>/transitions/ecalls`,
//! `run/<label>/histograms/tlb_miss/p99`, ...) so the report reads the
//! same way for counters and histogram percentiles.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::report::BENCH_SCHEMA;

/// One metric whose value moved between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Flattened metric path, e.g. `run/nested-1KB/total_cycles`.
    pub path: String,
    /// Value in the committed baseline.
    pub baseline: f64,
    /// Value in the current run.
    pub current: f64,
    /// Relative change `(current - baseline) / max(|baseline|,
    /// ZERO_FLOOR)`. The floored magnitude denominator keeps the verdict
    /// finite for a zero baseline (a 0-valued seed metric that grows
    /// reads as an enormous — but orderable and printable — regression,
    /// not `inf`/`NaN`) and keeps the sign meaningful should a baseline
    /// leaf ever be negative: growth toward the current value is always
    /// positive `rel`.
    pub rel: f64,
}

/// Floor for the relative-change denominator; far below any real
/// `ne-bench/v1` leaf (cycles, counts, percentiles are integers), so it
/// only engages when the baseline is exactly zero.
const ZERO_FLOOR: f64 = 1e-9;

impl MetricDelta {
    fn describe(&self) -> String {
        let pct = if self.rel.is_finite() {
            format!("{:+.2}%", self.rel * 100.0)
        } else {
            "+inf%".to_string()
        };
        format!(
            "{}: {} -> {} ({pct})",
            self.path, self.baseline, self.current
        )
    }
}

/// The outcome of one baseline comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareOutcome {
    /// Metrics present (and numeric) in both files.
    pub compared: usize,
    /// Metrics that grew past the threshold — higher is always worse in
    /// an `ne-bench/v1` file (cycles, counts, latency percentiles).
    pub regressions: Vec<MetricDelta>,
    /// Metrics that shrank past the threshold. Informational: likely a
    /// genuine improvement, but the baseline should be regenerated so
    /// the next regression is measured from the new floor.
    pub improvements: Vec<MetricDelta>,
    /// Metric paths present only in the current file (new coverage;
    /// informational).
    pub new_metrics: Vec<String>,
    /// Problems that make the comparison meaningless; always fatal.
    pub schema_errors: Vec<String>,
}

impl CompareOutcome {
    /// Process exit code: 2 on schema violations (even advisory), 1 on
    /// regressions unless `advisory`, 0 otherwise.
    pub fn exit_code(&self, advisory: bool) -> i32 {
        if !self.schema_errors.is_empty() {
            2
        } else if !self.regressions.is_empty() && !advisory {
            1
        } else {
            0
        }
    }

    /// Human-readable multi-line report of the whole outcome.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "compared {} metric(s) at threshold {:.1}%\n",
            self.compared,
            threshold * 100.0
        ));
        for err in &self.schema_errors {
            out.push_str(&format!("SCHEMA VIOLATION: {err}\n"));
        }
        for delta in &self.regressions {
            out.push_str(&format!("REGRESSION: {}\n", delta.describe()));
        }
        for delta in &self.improvements {
            out.push_str(&format!("improvement: {}\n", delta.describe()));
        }
        for path in &self.new_metrics {
            out.push_str(&format!("new metric (not in baseline): {path}\n"));
        }
        if self.schema_errors.is_empty()
            && self.regressions.is_empty()
            && self.improvements.is_empty()
        {
            out.push_str("ok: no metric moved past the threshold\n");
        }
        out
    }
}

/// Flattens an `ne-bench/v1` document into `path -> value` leaves,
/// validating its shape along the way.
///
/// # Errors
///
/// Every shape problem found (not just the first): unparseable JSON,
/// wrong `schema`, missing `runs`, runs without a string `label`,
/// non-numeric metric leaves.
pub fn flatten(src: &str) -> Result<BTreeMap<String, f64>, Vec<String>> {
    let doc = json::parse(src).map_err(|e| vec![format!("unparseable JSON: {e}")])?;
    let mut errors = Vec::new();
    match doc.get("schema").and_then(Value::as_str) {
        Some(BENCH_SCHEMA) => {}
        Some(other) => errors.push(format!(
            "schema is \"{other}\", expected \"{BENCH_SCHEMA}\""
        )),
        None => errors.push("missing \"schema\" string".to_string()),
    }
    let mut leaves = BTreeMap::new();
    match doc.get("runs").and_then(Value::as_array) {
        None => errors.push("missing \"runs\" array".to_string()),
        Some(runs) => {
            for (i, run) in runs.iter().enumerate() {
                let Some(label) = run.get("label").and_then(Value::as_str) else {
                    errors.push(format!("runs[{i}] has no string \"label\""));
                    continue;
                };
                flatten_value(run, &format!("run/{label}"), &mut leaves, &mut errors);
            }
        }
    }
    if errors.is_empty() {
        Ok(leaves)
    } else {
        Err(errors)
    }
}

fn flatten_value(
    value: &Value,
    path: &str,
    leaves: &mut BTreeMap<String, f64>,
    errors: &mut Vec<String>,
) {
    match value {
        Value::Num(n) => {
            leaves.insert(path.to_string(), *n);
        }
        Value::Obj(members) => {
            // "label" is the run's identity (already folded into `path`),
            // not a metric.
            for (key, child) in members {
                if key == "label" {
                    continue;
                }
                flatten_value(child, &format!("{path}/{key}"), leaves, errors);
            }
        }
        other => errors.push(format!("{path}: expected a number, found {other:?}")),
    }
}

/// Compares a current `ne-bench/v1` document against a baseline one.
///
/// `threshold` is the relative growth past which a metric counts as a
/// regression (e.g. `0.05` for 5%).
pub fn compare(baseline_src: &str, current_src: &str, threshold: f64) -> CompareOutcome {
    let mut outcome = CompareOutcome::default();
    let baseline = match flatten(baseline_src) {
        Ok(leaves) => leaves,
        Err(errors) => {
            outcome
                .schema_errors
                .extend(errors.into_iter().map(|e| format!("baseline: {e}")));
            return outcome;
        }
    };
    let current = match flatten(current_src) {
        Ok(leaves) => leaves,
        Err(errors) => {
            outcome
                .schema_errors
                .extend(errors.into_iter().map(|e| format!("current: {e}")));
            return outcome;
        }
    };
    for (path, &base) in &baseline {
        let Some(&cur) = current.get(path) else {
            outcome
                .schema_errors
                .push(format!("current run is missing baseline metric {path}"));
            continue;
        };
        outcome.compared += 1;
        let rel = if cur == base {
            // Covers both-zero (and exactly-equal) without touching the
            // division at all.
            0.0
        } else {
            (cur - base) / base.abs().max(ZERO_FLOOR)
        };
        let delta = MetricDelta {
            path: path.clone(),
            baseline: base,
            current: cur,
            rel,
        };
        if rel > threshold {
            outcome.regressions.push(delta);
        } else if rel < -threshold {
            outcome.improvements.push(delta);
        }
    }
    for path in current.keys() {
        if !baseline.contains_key(path) {
            outcome.new_metrics.push(path.clone());
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cycles: u64, p99: u64) -> String {
        format!(
            r#"{{
  "schema": "ne-bench/v1",
  "experiment": "t",
  "runs": [
    {{
      "label": "a",
      "total_cycles": {cycles},
      "transitions": {{"ecalls": 10, "total": 10}},
      "histograms": {{"ecall": {{"count": 10, "sum": 100, "min": 1, "max": 40, "p50": 8, "p90": 16, "p99": {p99}}}}}
    }}
  ]
}}"#
        )
    }

    #[test]
    fn identical_files_compare_clean() {
        let outcome = compare(&doc(1000, 32), &doc(1000, 32), 0.05);
        assert!(outcome.schema_errors.is_empty());
        assert!(outcome.regressions.is_empty());
        assert!(outcome.improvements.is_empty());
        assert_eq!(outcome.compared, 10);
        assert_eq!(outcome.exit_code(false), 0);
    }

    #[test]
    fn ten_percent_growth_is_a_regression() {
        let outcome = compare(&doc(1000, 32), &doc(1100, 32), 0.05);
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].path, "run/a/total_cycles");
        assert!((outcome.regressions[0].rel - 0.10).abs() < 1e-9);
        assert_eq!(outcome.exit_code(false), 1);
        // Advisory mode reports but does not fail.
        assert_eq!(outcome.exit_code(true), 0);
    }

    #[test]
    fn shrinkage_is_an_improvement_not_a_failure() {
        let outcome = compare(&doc(1000, 32), &doc(800, 32), 0.05);
        assert!(outcome.regressions.is_empty());
        assert_eq!(outcome.improvements.len(), 1);
        assert_eq!(outcome.exit_code(false), 0);
    }

    #[test]
    fn wrong_schema_hard_fails_even_advisory() {
        let bad = doc(1000, 32).replace("ne-bench/v1", "ne-bench/v9");
        let outcome = compare(&doc(1000, 32), &bad, 0.05);
        assert_eq!(outcome.schema_errors.len(), 1);
        assert_eq!(outcome.exit_code(true), 2);
    }

    #[test]
    fn missing_metric_is_a_schema_violation() {
        let current = doc(1000, 32).replace("\"ecalls\": 10, ", "");
        let outcome = compare(&doc(1000, 32), &current, 0.05);
        assert!(outcome
            .schema_errors
            .iter()
            .any(|e| e.contains("run/a/transitions/ecalls")));
        assert_eq!(outcome.exit_code(true), 2);
    }

    #[test]
    fn new_metrics_are_informational() {
        let current = doc(1000, 32).replace("\"ecalls\": 10, ", "\"ecalls\": 10, \"shiny\": 1, ");
        let outcome = compare(&doc(1000, 32), &current, 0.05);
        assert!(outcome.schema_errors.is_empty());
        assert_eq!(outcome.new_metrics, vec!["run/a/transitions/shiny"]);
        assert_eq!(outcome.exit_code(false), 0);
    }

    #[test]
    fn zero_baseline_growth_is_a_finite_regression() {
        let base = doc(1000, 32).replace("\"ecalls\": 10, ", "\"ecalls\": 0, ");
        let outcome = compare(&base, &doc(1000, 32), 0.05);
        assert_eq!(outcome.regressions.len(), 1);
        let rel = outcome.regressions[0].rel;
        assert!(rel.is_finite(), "zero baseline must not verdict inf: {rel}");
        assert!(rel > 0.05, "growth from zero is still a regression: {rel}");
        // The report must render a percentage, not a placeholder.
        assert!(outcome.render(0.05).contains('%'));
    }

    #[test]
    fn zero_baseline_zero_current_is_clean() {
        let both = doc(1000, 32).replace("\"ecalls\": 10, ", "\"ecalls\": 0, ");
        let outcome = compare(&both, &both, 0.05);
        assert!(outcome.regressions.is_empty());
        assert!(outcome.improvements.is_empty());
        let zeroed = compare(&both, &both, 0.0);
        // Even at threshold zero, 0 -> 0 is "no movement", not NaN.
        assert!(zeroed.regressions.is_empty());
        assert!(zeroed.improvements.is_empty());
    }

    #[test]
    fn equal_nonzero_values_never_verdict() {
        // cur == base short-circuits to rel 0.0 even at threshold 0.
        let outcome = compare(&doc(1000, 32), &doc(1000, 32), 0.0);
        assert!(outcome.regressions.is_empty());
        assert!(outcome.improvements.is_empty());
    }

    #[test]
    fn sign_flip_across_zero_keeps_verdict_direction() {
        // A (hypothetical) negative baseline growing through zero must
        // read as a positive regression, not an improvement: the
        // magnitude denominator keeps (cur - base) in charge of the sign.
        let base = doc(1000, 32).replace("\"min\": 1,", "\"min\": -4,");
        let cur = doc(1000, 32).replace("\"min\": 1,", "\"min\": 4,");
        let outcome = compare(&base, &cur, 0.05);
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].path, "run/a/histograms/ecall/min");
        assert!((outcome.regressions[0].rel - 2.0).abs() < 1e-9);
        // And shrinking through zero is an improvement, symmetrically.
        let outcome = compare(&cur, &base, 0.05);
        assert_eq!(outcome.improvements.len(), 1);
        assert!((outcome.improvements[0].rel + 2.0).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_each_class() {
        let outcome = compare(&doc(1000, 32), &doc(1100, 32), 0.05);
        let text = outcome.render(0.05);
        assert!(text.contains("REGRESSION: run/a/total_cycles"));
        assert!(text.contains("+10.00%"));
    }

    #[test]
    fn real_report_compares_clean_against_itself() {
        use crate::report::MetricsReport;
        let mut m = ne_sgx::machine::Machine::new(ne_sgx::config::HwConfig::small());
        let va = m.os_alloc_untrusted(ne_sgx::enclave::ProcessId(0), 1);
        m.write(0, va, b"x").unwrap();
        let mut r = MetricsReport::new("self");
        r.push_run("only", m.metrics());
        let j = r.to_bench_json();
        let outcome = compare(&j, &j, 0.05);
        assert!(
            outcome.schema_errors.is_empty(),
            "{:?}",
            outcome.schema_errors
        );
        assert!(outcome.regressions.is_empty());
        assert!(outcome.compared > 0);
    }
}
