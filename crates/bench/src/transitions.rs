//! Table II: average transition-call latency.
//!
//! A microbenchmark "performing transition calls for 1 million times"
//! (§ V) under three configurations: real-hardware SGX costs, emulated SGX
//! costs, and emulated nested-enclave costs.

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn, UntrustedFn};
use ne_core::validate::NestedValidator;
use ne_sgx::config::HwConfig;
use ne_sgx::cost::CostProfile;
use ne_sgx::machine::Machine;
use ne_sgx::spantree::TraceBundle;
use std::sync::Arc;

/// Measured average latencies in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionLatency {
    /// Average latency of an ecall-style round trip.
    pub ecall_us: f64,
    /// Average latency of an ocall-style round trip.
    pub ocall_us: f64,
    /// Machine snapshot taken after the last measurement phase (the
    /// counters cover that phase only; `reset_metrics` runs in between).
    pub metrics: ne_sgx::metrics::MachineMetrics,
    /// Span-tree exports of the last measurement phase, when tracing was
    /// requested.
    pub trace: Option<TraceBundle>,
}

/// Builds a minimal app: an outer "noop" enclave with an inner "noop"
/// enclave, on the given cost profile.
fn noop_app(profile: CostProfile, trace: bool) -> NestedApp {
    let mut cfg = HwConfig::testbed();
    cfg.cost = profile;
    cfg.trace_events = trace;
    let machine = Machine::with_validator(cfg, Box::new(NestedValidator::new()));
    let mut app = NestedApp::with_machine(machine);
    let noop_untrusted: UntrustedFn = Arc::new(|_cx, _| Ok(vec![]));
    app.register_untrusted("u_noop", noop_untrusted);
    let outer = EnclaveImage::new("outer", b"bench").edl(
        Edl::new()
            .ecall("noop")
            .ecall("one_ocall")
            .ecall("one_n_ecall")
            .ocall("u_noop"),
    );
    let noop: TrustedFn = Arc::new(|_cx, _| Ok(vec![]));
    let one_ocall: TrustedFn = Arc::new(|cx, _| cx.ocall("u_noop", b""));
    let one_n_ecall: TrustedFn = Arc::new(|cx, _| cx.n_ecall("inner", "i_noop", b""));
    app.load(
        outer,
        [
            ("noop".to_string(), noop.clone()),
            ("one_ocall".to_string(), one_ocall),
            ("one_n_ecall".to_string(), one_n_ecall),
            // Body for the inner's n_ocall target.
            ("o_fn".to_string(), noop.clone()),
        ],
    )
    .expect("load outer");
    let inner = EnclaveImage::new("inner", b"bench").edl(
        Edl::new()
            .ecall("noop")
            .ecall("one_n_ocall")
            .n_ecall("i_noop")
            .n_ocall("o_fn"),
    );
    let one_n_ocall: TrustedFn = Arc::new(|cx, _| cx.n_ocall("o_fn", b""));
    app.load(
        inner,
        [
            ("noop".to_string(), noop.clone()),
            ("i_noop".to_string(), noop.clone()),
            ("one_n_ocall".to_string(), one_n_ocall),
        ],
    )
    .expect("load inner");
    app.associate("inner", "outer").expect("NASSO");
    app
}

/// Measures the average latency of `iters` ecall and ocall round trips
/// under the given cost profile. With `trace`, the returned
/// [`TransitionLatency::trace`] covers the final (ocall) phase.
pub fn measure_classic(profile: CostProfile, iters: u64, trace: bool) -> TransitionLatency {
    let mut app = noop_app(profile.clone(), trace);
    app.machine.reset_metrics();
    for _ in 0..iters {
        app.ecall(0, "outer", "noop", b"").expect("ecall");
    }
    let ecall_us = profile.cycles_to_us(app.machine.cycles(0)) / iters as f64;
    app.machine.reset_metrics();
    for _ in 0..iters {
        app.ecall(0, "outer", "one_ocall", b"").expect("ocall");
    }
    // Each iteration = 1 ecall + 1 ocall; subtract the ecall component.
    let total_us = profile.cycles_to_us(app.machine.cycles(0)) / iters as f64;
    TransitionLatency {
        ecall_us,
        ocall_us: total_us - ecall_us,
        metrics: app.machine.metrics(),
        trace: trace.then(|| TraceBundle::capture(&app.machine)),
    }
}

/// Measures the average latency of `iters` n_ecall and n_ocall round trips
/// (emulated profile; nested transitions only exist there, § V). With
/// `trace`, the returned [`TransitionLatency::trace`] covers the final
/// (n_ocall) phase.
pub fn measure_nested(profile: CostProfile, iters: u64, trace: bool) -> TransitionLatency {
    let mut app = noop_app(profile.clone(), trace);
    // Baseline: plain ecall into the outer.
    app.machine.reset_metrics();
    for _ in 0..iters {
        app.ecall(0, "outer", "noop", b"").expect("ecall");
    }
    let base_us = profile.cycles_to_us(app.machine.cycles(0)) / iters as f64;
    // n_ecall: outer → inner round trip on top of the ecall.
    app.machine.reset_metrics();
    for _ in 0..iters {
        app.ecall(0, "outer", "one_n_ecall", b"").expect("n_ecall");
    }
    let n_ecall_us = profile.cycles_to_us(app.machine.cycles(0)) / iters as f64 - base_us;
    // n_ocall: inner → outer round trip on top of an ecall into the inner.
    app.machine.reset_metrics();
    for _ in 0..iters {
        app.ecall(0, "inner", "noop", b"").expect("ecall inner");
    }
    let base_inner_us = profile.cycles_to_us(app.machine.cycles(0)) / iters as f64;
    app.machine.reset_metrics();
    for _ in 0..iters {
        app.ecall(0, "inner", "one_n_ocall", b"").expect("n_ocall");
    }
    let n_ocall_us = profile.cycles_to_us(app.machine.cycles(0)) / iters as f64 - base_inner_us;
    TransitionLatency {
        ecall_us: n_ecall_us,
        ocall_us: n_ocall_us,
        metrics: app.machine.metrics(),
        trace: trace.then(|| TraceBundle::capture(&app.machine)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_profile_reproduces_table2_row1() {
        let l = measure_classic(CostProfile::hw_sgx(), 200, false);
        assert!((l.ecall_us - 3.45).abs() < 0.15, "ecall {}", l.ecall_us);
        assert!((l.ocall_us - 3.13).abs() < 0.15, "ocall {}", l.ocall_us);
    }

    #[test]
    fn emulated_profile_reproduces_table2_row2() {
        let l = measure_classic(CostProfile::emulated(), 200, false);
        assert!((l.ecall_us - 1.25).abs() < 0.10, "ecall {}", l.ecall_us);
        assert!((l.ocall_us - 1.14).abs() < 0.10, "ocall {}", l.ocall_us);
    }

    #[test]
    fn nested_reproduces_table2_row3() {
        let l = measure_nested(CostProfile::emulated(), 200, false);
        assert!((l.ecall_us - 1.11).abs() < 0.10, "n_ecall {}", l.ecall_us);
        assert!((l.ocall_us - 1.06).abs() < 0.10, "n_ocall {}", l.ocall_us);
    }

    #[test]
    fn ordering_matches_paper() {
        // HW > emulated classic > emulated nested.
        let hw = measure_classic(CostProfile::hw_sgx(), 100, false);
        let em = measure_classic(CostProfile::emulated(), 100, false);
        let ne = measure_nested(CostProfile::emulated(), 100, false);
        assert!(hw.ecall_us > em.ecall_us);
        assert!(em.ecall_us > ne.ecall_us);
        assert!(hw.ocall_us > em.ocall_us);
        assert!(em.ocall_us > ne.ocall_us);
    }
}
