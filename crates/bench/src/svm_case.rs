//! Fig. 9 / Table V: the machine-learning-as-a-service case study (§ VI-B).
//!
//! The service provider runs LibSVM in a shared enclave; each client gets
//! an inner enclave that decrypts its private data, applies a privacy
//! filter, and only then hands the sanitized samples to the library.
//! The monolithic baseline "runs all operations in an enclave".
//!
//! Compute is charged deterministically: training costs cycles
//! proportional to `samples × dim` per optimization sweep, prediction to
//! `support_vectors × dim` per query — the terms that dominate LibSVM's
//! runtime — so the nested-vs-monolithic ratio depends only on the extra
//! transitions, as in the paper.

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn};
use ne_sgx::config::HwConfig;
use ne_sgx::error::SgxError;
use ne_sgx::spantree::TraceBundle;
use ne_svm::data::{Dataset, TableVDataset};
use ne_svm::filter::FilterPolicy;
use ne_svm::smo::{train, TrainParams};
use ne_svm::SvmModel;
use std::sync::{Arc, Mutex};

/// Cycles per (sample × dimension) of one training sweep.
const TRAIN_CYCLES_PER_CELL: u64 = 40;
/// Cycles per (support-vector × dimension) of one prediction.
const PREDICT_CYCLES_PER_CELL: u64 = 16;

/// Configuration of one Fig. 9 run.
#[derive(Debug, Clone)]
pub struct SvmCaseConfig {
    /// Which Table V dataset shape to use.
    pub dataset: TableVDataset,
    /// Size scale (1.0 = the paper's full sizes).
    pub scale: f64,
    /// Nested (per-user inner + shared LibSVM outer) vs. monolithic.
    pub nested: bool,
    /// Record the event trace; the run's [`SvmCaseResult::trace`] then
    /// covers the predict phase.
    pub trace: bool,
    /// XORed into the dataset seed and the trainer's heuristic seed; 0
    /// reproduces the committed figures exactly.
    pub seed: u64,
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct SvmCaseResult {
    /// Simulated cycles to train.
    pub train_cycles: u64,
    /// Simulated cycles to predict over the test set.
    pub predict_cycles: u64,
    /// Test accuracy (sanity: the workload is real).
    pub accuracy: f64,
    /// Nested transitions taken.
    pub n_calls: u64,
    /// Machine snapshot after the predict phase (`reset_metrics` runs
    /// between train and predict, so the counters cover predict only).
    pub metrics: ne_sgx::metrics::MachineMetrics,
    /// Span-tree exports of the predict phase, when
    /// [`SvmCaseConfig::trace`] was set.
    pub trace: Option<TraceBundle>,
}

fn gcm_cost(cfg: &HwConfig, len: usize) -> u64 {
    cfg.cost.gcm_setup + cfg.cost.gcm_per_byte * len as u64
}

fn train_charge(ds: &Dataset) -> u64 {
    (ds.len() as u64) * (ds.dim() as u64) * TRAIN_CYCLES_PER_CELL
}

fn predict_charge(model: &SvmModel, ds: &Dataset) -> u64 {
    (model.num_support_vectors() as u64)
        * (ds.dim() as u64)
        * PREDICT_CYCLES_PER_CELL
        * ds.len() as u64
}

/// Runs one Fig. 9 configuration.
///
/// # Errors
///
/// Enclave plumbing errors (none expected for valid configs).
pub fn run_svm_case(cfg: &SvmCaseConfig) -> Result<SvmCaseResult, SgxError> {
    let (train_ds, test_ds) = cfg.dataset.generate_with_seed(cfg.scale, cfg.seed);
    let classes = train_ds.num_classes;
    let params = TrainParams {
        seed: TrainParams::default().seed ^ cfg.seed,
        ..TrainParams::default()
    };
    let model_slot: Arc<Mutex<Option<SvmModel>>> = Arc::new(Mutex::new(None));
    let policy = FilterPolicy {
        drop_columns: vec![0],
        quantize: vec![],
    };

    let mut hw = HwConfig::testbed();
    hw.trace_events = cfg.trace;
    let mut app = NestedApp::new(hw);
    // [port:begin svm]
    // Nested-enclave port of the LibSVM service: the library is loaded as
    // the shared outer enclave; each client's filter runs in an inner
    // enclave and reaches the library with n_ocalls.
    if cfg.nested {
        let lib = EnclaveImage::new("libsvm", b"service-provider")
            .code_pages(32)
            .heap_pages(8)
            .edl(Edl::new());
        let m1 = model_slot.clone();
        let p = params.clone();
        let svm_train: TrustedFn = Arc::new(move |cx, args| {
            let ds = Dataset::from_bytes(args, classes);
            cx.charge(train_charge(&ds));
            let model = train(&ds, &p);
            *m1.lock().expect("poisoned") = Some(model);
            Ok(vec![])
        });
        let m2 = model_slot.clone();
        let svm_predict: TrustedFn = Arc::new(move |cx, args| {
            let ds = Dataset::from_bytes(args, classes);
            let guard = m2.lock().expect("poisoned");
            let model = guard.as_ref().expect("train first");
            cx.charge(predict_charge(model, &ds));
            Ok(ds.samples.iter().map(|x| model.predict(x) as u8).collect())
        });
        app.load(
            lib,
            [
                ("svm_train".to_string(), svm_train),
                ("svm_predict".to_string(), svm_predict),
            ],
        )?;
        let user = EnclaveImage::new("user", b"tenant").heap_pages(8).edl(
            Edl::new()
                .ecall("train")
                .ecall("predict")
                .n_ocall("svm_train")
                .n_ocall("svm_predict"),
        );
        let p1 = policy.clone();
        let train_fn: TrustedFn = Arc::new(move |cx, args| {
            // Decrypt the client's data (top secret) inside the inner
            // enclave, filter it, then hand the sanitized set to the lib.
            cx.charge(gcm_cost(cx.machine.config(), args.len()));
            let ds = Dataset::from_bytes(args, classes);
            let clean = p1.anonymize(&ds);
            cx.n_ocall("svm_train", &clean.to_bytes())
        });
        let p2 = policy.clone();
        let predict_fn: TrustedFn = Arc::new(move |cx, args| {
            cx.charge(gcm_cost(cx.machine.config(), args.len()));
            let ds = Dataset::from_bytes(args, classes);
            let clean = p2.anonymize(&ds);
            cx.n_ocall("svm_predict", &clean.to_bytes())
        });
        app.load(
            user,
            [
                ("train".to_string(), train_fn),
                ("predict".to_string(), predict_fn),
            ],
        )?;
        app.associate("user", "libsvm")?;
    }
    // [port:end svm]
    else {
        // Monolithic baseline: decrypt, filter, and LibSVM all in one
        // enclave.
        let img = EnclaveImage::new("user", b"service-provider")
            .code_pages(40)
            .heap_pages(16)
            .edl(Edl::new().ecall("train").ecall("predict"));
        let m1 = model_slot.clone();
        let p1 = policy.clone();
        let p = params.clone();
        let train_fn: TrustedFn = Arc::new(move |cx, args| {
            cx.charge(gcm_cost(cx.machine.config(), args.len()));
            let ds = Dataset::from_bytes(args, classes);
            let clean = p1.anonymize(&ds);
            cx.charge(train_charge(&clean));
            *m1.lock().expect("poisoned") = Some(train(&clean, &p));
            Ok(vec![])
        });
        let m2 = model_slot.clone();
        let p2 = policy.clone();
        let predict_fn: TrustedFn = Arc::new(move |cx, args| {
            cx.charge(gcm_cost(cx.machine.config(), args.len()));
            let ds = Dataset::from_bytes(args, classes);
            let clean = p2.anonymize(&ds);
            let guard = m2.lock().expect("poisoned");
            let model = guard.as_ref().expect("train first");
            cx.charge(predict_charge(model, &clean));
            Ok(clean
                .samples
                .iter()
                .map(|x| model.predict(x) as u8)
                .collect())
        });
        app.load(
            img,
            [
                ("train".to_string(), train_fn),
                ("predict".to_string(), predict_fn),
            ],
        )?;
    }

    app.machine.reset_metrics();
    app.ecall(0, "user", "train", &train_ds.to_bytes())?;
    let train_cycles = app.machine.cycles(0);
    app.machine.reset_metrics();
    let preds = app.ecall(0, "user", "predict", &test_ds.to_bytes())?;
    let predict_cycles = app.machine.cycles(0);
    let correct = preds
        .iter()
        .zip(&test_ds.labels)
        .filter(|(&p, &l)| p as usize == l)
        .count();
    let stats = app.machine.stats();
    Ok(SvmCaseResult {
        train_cycles,
        predict_cycles,
        accuracy: correct as f64 / test_ds.len().max(1) as f64,
        n_calls: stats.n_ecalls + stats.n_ocalls,
        metrics: app.machine.metrics(),
        trace: cfg.trace.then(|| TraceBundle::capture(&app.machine)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(nested: bool) -> SvmCaseResult {
        run_svm_case(&SvmCaseConfig {
            dataset: TableVDataset::Dna,
            scale: 0.01,
            nested,
            trace: false,
            seed: 0,
        })
        .unwrap()
    }

    #[test]
    fn both_modes_train_and_predict() {
        for nested in [false, true] {
            let r = run(nested);
            assert!(r.train_cycles > 0);
            assert!(r.predict_cycles > 0);
            assert!(r.accuracy > 0.5, "accuracy {}", r.accuracy);
        }
    }

    #[test]
    fn nested_uses_n_calls() {
        assert_eq!(run(false).n_calls, 0);
        assert!(run(true).n_calls > 0);
    }

    #[test]
    fn fig9_shape_overhead_is_negligible() {
        // Paper: "nested enclave shows a similar performance to the
        // monolithic enclave".
        let mono = run(false);
        let nested = run(true);
        let train_ratio = nested.train_cycles as f64 / mono.train_cycles as f64;
        let pred_ratio = nested.predict_cycles as f64 / mono.predict_cycles as f64;
        assert!(
            train_ratio > 0.95 && train_ratio < 1.10,
            "train ratio {train_ratio}"
        );
        assert!(
            pred_ratio > 0.95 && pred_ratio < 1.10,
            "predict ratio {pred_ratio}"
        );
    }

    #[test]
    fn filter_really_applied() {
        // Both configurations anonymize; predictions come from sanitized
        // data and still classify (dropping column 0 of many features).
        let r = run(true);
        assert!(r.accuracy > 0.5);
    }
}
