//! Criterion bench: the Fig. 7 echo server in both configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use ne_tls::echo::{run_echo, EchoConfig};
use std::time::Duration;

fn bench_echo(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for nested in [false, true] {
        let label = if nested { "nested" } else { "monolithic" };
        g.bench_function(format!("echo_1k_x20_{label}"), |b| {
            b.iter(|| {
                run_echo(&EchoConfig {
                    chunk_size: 1024,
                    num_messages: 20,
                    nested,
                    trace: false,
                    reference: false,
                })
                .expect("echo run")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_echo);
criterion_main!(benches);
