//! Criterion bench: the Fig. 10 enclave loader.

use criterion::{criterion_group, criterion_main, Criterion};
use ne_bench::loading::{run_loading, LoadMode};
use std::time::Duration;

fn bench_loading(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.bench_function("combined_8", |b| {
        b.iter(|| run_loading(LoadMode::BaselineCombined, 8, 0, false).expect("combined"))
    });
    g.bench_function("nested_8_shared_1", |b| {
        b.iter(|| run_loading(LoadMode::Nested, 8, 1, false).expect("nested"))
    });
    g.finish();
}

criterion_group!(benches, bench_loading);
criterion_main!(benches);
