//! Criterion bench: the Fig. 11 communication channels.

use criterion::{criterion_group, criterion_main, Criterion};
use ne_bench::channel_exp::{run_gcm_channel, run_outer_channel};
use std::time::Duration;

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.bench_function("outer_channel_1k_256k", |b| {
        b.iter(|| run_outer_channel(1024, 1 << 20, 256 << 10, false).expect("outer"))
    });
    g.bench_function("gcm_channel_1k_256k", |b| {
        b.iter(|| run_gcm_channel(1024, 1 << 20, 256 << 10, false).expect("gcm"))
    });
    g.finish();
}

criterion_group!(benches, bench_channel);
criterion_main!(benches);
