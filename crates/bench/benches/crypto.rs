//! Criterion bench: the from-scratch crypto substrate (host throughput).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ne_crypto::gcm::AesGcm;
use ne_crypto::sha256;
use std::time::Duration;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let data = vec![0xABu8; 16 * 1024];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_16k", |b| b.iter(|| sha256::digest(&data)));
    let cipher = AesGcm::new(&[7; 16]);
    g.bench_function("aes_gcm_seal_16k", |b| {
        b.iter(|| cipher.seal(&[0; 12], &data, b""))
    });
    g.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
