//! Criterion bench: the Fig. 9 LibSVM case study.

use criterion::{criterion_group, criterion_main, Criterion};
use ne_bench::svm_case::{run_svm_case, SvmCaseConfig};
use ne_svm::data::TableVDataset;
use std::time::Duration;

fn bench_svm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for nested in [false, true] {
        let label = if nested { "nested" } else { "monolithic" };
        g.bench_function(format!("dna_train_predict_{label}"), |b| {
            b.iter(|| {
                run_svm_case(&SvmCaseConfig {
                    dataset: TableVDataset::Dna,
                    scale: 0.005,
                    nested,
                    trace: false,
                    seed: 0,
                })
                .expect("svm case")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_svm);
criterion_main!(benches);
