//! Criterion bench: host-side cost of simulated transition dispatch
//! (the Table II code path).

use criterion::{criterion_group, criterion_main, Criterion};
use ne_bench::transitions::{measure_classic, measure_nested};
use ne_sgx::cost::CostProfile;
use std::time::Duration;

fn bench_transitions(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("classic_emulated_100", |b| {
        b.iter(|| measure_classic(CostProfile::emulated(), 100, false))
    });
    g.bench_function("nested_emulated_100", |b| {
        b.iter(|| measure_nested(CostProfile::emulated(), 100, false))
    });
    g.finish();
}

criterion_group!(benches, bench_transitions);
criterion_main!(benches);
