//! Criterion bench: the Table VI SQLite/YCSB case study.

use criterion::{criterion_group, criterion_main, Criterion};
use ne_bench::db_case::{run_db_case, DEFAULT_DB_SEED};
use ne_db::WorkloadMix;
use std::time::Duration;

fn bench_db(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for nested in [false, true] {
        let label = if nested { "nested" } else { "monolithic" };
        g.bench_function(format!("ycsb_95_5_x100_{label}"), |b| {
            b.iter(|| {
                run_db_case(
                    WorkloadMix::Select95Update5,
                    50,
                    100,
                    nested,
                    false,
                    DEFAULT_DB_SEED,
                )
                .expect("db case")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_db);
criterion_main!(benches);
