//! The emitted Chrome Trace Event JSON is well-formed: it parses, every
//! `B` event has a matching `E` on the same `(pid, tid)` lane closing the
//! innermost open span, and timestamps never go backwards within a lane.
//!
//! This is the round-trip the ISSUE's acceptance criterion asks for: the
//! trace a binary writes with `--trace-out` is fed back through the
//! crate's own JSON parser and checked structurally, so a malformed
//! export fails here before Perfetto ever sees it.

use ne_bench::json::{self, Value};
use ne_sgx::config::HwConfig;
use ne_sgx::machine::Machine;
use ne_sgx::spantree::TraceBundle;
use ne_sgx::trace::SpanKind;
use ne_tls::echo::{run_echo, EchoConfig};
use std::collections::BTreeMap;

/// Structurally validates a Chrome trace and returns `(begins, ends)`.
fn validate(chrome_json: &str) -> (usize, usize) {
    let doc = json::parse(chrome_json).expect("chrome trace must parse");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("top level must hold a \"traceEvents\" array");
    let mut stacks: BTreeMap<(u64, u64), Vec<(String, f64)>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let (mut begins, mut ends) = (0, 0);
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .expect("every event has a ph");
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .expect("every event has a name");
        let pid = e
            .get("pid")
            .and_then(Value::as_u64)
            .expect("every event has a pid");
        let tid = e
            .get("tid")
            .and_then(Value::as_u64)
            .expect("every event has a tid");
        let lane = (pid, tid);
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("{ph} event \"{name}\" without a numeric ts"));
        assert!(ts >= 0.0, "negative timestamp on \"{name}\"");
        if ph == "B" || ph == "E" {
            // Span events must be chronological within their lane. Instant
            // markers ("i") are exempt: the emitter appends truncation
            // markers after the span stream, and viewers sort by ts anyway.
            let prev = last_ts.entry(lane).or_insert(ts);
            assert!(
                ts >= *prev,
                "timestamps go backwards on pid {pid} tid {tid}: {ts} after {prev}"
            );
            *prev = ts;
        }
        match ph {
            "B" => {
                begins += 1;
                stacks.entry(lane).or_default().push((name.to_string(), ts));
            }
            "E" => {
                ends += 1;
                let (open, begin_ts) =
                    stacks.get_mut(&lane).and_then(Vec::pop).unwrap_or_else(|| {
                        panic!("E \"{name}\" without an open B on pid {pid} tid {tid}")
                    });
                assert_eq!(open, name, "E must close the innermost open B of its lane");
                assert!(ts >= begin_ts, "span \"{name}\" ends before it begins");
            }
            "i" => {} // instant markers (unfinished / truncated spans)
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    for (lane, stack) in &stacks {
        assert!(
            stack.is_empty(),
            "unclosed B events left on lane {lane:?}: {stack:?}"
        );
    }
    (begins, ends)
}

#[test]
fn echo_trace_round_trips_through_the_parser() {
    let run = run_echo(&EchoConfig {
        chunk_size: 512,
        num_messages: 8,
        nested: true,
        trace: true,
        reference: false,
    })
    .expect("echo");
    let bundle = run.trace.expect("traced run returns a bundle");
    let (begins, ends) = validate(&bundle.chrome_json);
    assert_eq!(begins, ends, "every B needs a matching E");
    assert!(begins > 0, "a nested echo must produce spans");
    assert_eq!(begins, bundle.spans, "one B/E pair per finished span");
    assert_eq!(bundle.unfinished, 0, "echo leaves no open spans at rest");
}

#[test]
fn wrapped_ring_still_exports_well_formed_json() {
    // Capacity 4 forces eviction of early begins; their ends must surface
    // as instant markers, never as unbalanced E events.
    let mut cfg = HwConfig::small();
    cfg.trace_events = true;
    cfg.trace_capacity = 4;
    let mut m = Machine::new(cfg);
    let outer = m.span_begin(0, SpanKind::Ecall, "outer");
    for i in 0..6 {
        let s = m.span_begin(0, SpanKind::Ocall, &format!("o{i}"));
        m.charge(0, 10);
        m.span_end(0, s);
    }
    m.span_end(0, outer);
    let bundle = TraceBundle::capture(&m);
    assert!(bundle.trace_dropped > 0, "ring must have wrapped");
    assert!(bundle.truncated > 0, "evicted begins must be counted");
    let (begins, ends) = validate(&bundle.chrome_json);
    assert_eq!(begins, ends);
    assert!(
        bundle.chrome_json.contains("truncated_span_end"),
        "truncation must be visible in the export"
    );
}
