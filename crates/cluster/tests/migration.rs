//! Live cross-shard migration oracles.
//!
//! * **Differential oracle**: a segmented run that migrates a tenant
//!   between segments must produce a per-tenant export (`ne-tenants/v1`,
//!   reply digests included) byte-identical to the same run without the
//!   migration — and both must match the unsegmented run. Migration is
//!   *invisible* in tenant-observable bytes.
//! * **Zero dropped requests**: through planned, EPC-pressure, and
//!   chaos-triggered migrations, every accepted request either
//!   completes or is explicitly shed — never silently lost.
//! * **Freshness**: a stale sealed snapshot replayed cross-shard is
//!   refused with the typed [`HostError::StateRollback`] error.
//! * **Rollback**: a destination without EPC headroom refuses the
//!   adoption and the tenant resumes on the source shard.

use ne_cluster::{
    drive, Cluster, ClusterConfig, MigrationOutcome, MigrationPolicy, MigrationTrigger, PlannedMove,
};
use ne_host::HostError;
use ne_obs::SamplerConfig;
use ne_sgx::SgxError;
use proptest::prelude::*;

const TENANTS: usize = 4;
const SERVICES: usize = 2;
const SEED: u64 = 7;

fn build_cluster(shards: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(drive::standard_specs(TENANTS, SERVICES), shards);
    cfg.host.seed = SEED;
    Cluster::build(cfg).expect("cluster build")
}

/// The first global tenant placed on `shard`.
fn tenant_on_shard(cluster: &Cluster, shard: usize) -> usize {
    (0..cluster.num_tenants())
        .find(|&g| cluster.placement(g).0 == shard)
        .unwrap_or_else(|| panic!("no tenant placed on shard {shard}"))
}

/// Moves the first tenant of shard 0 to shard 1 at the barrier after
/// segment 0.
fn move_one(cluster: &Cluster) -> (usize, MigrationPolicy) {
    let g = tenant_on_shard(cluster, 0);
    let policy = MigrationPolicy {
        moves: vec![PlannedMove {
            segment: 0,
            global: g,
            to_shard: 1,
        }],
        epc_low_water: None,
    };
    (g, policy)
}

#[test]
fn planned_migration_is_byte_invisible_in_the_tenant_export() {
    // Baseline A: the plain unsegmented run.
    let mut plain = build_cluster(2);
    let plain_accepted = plain.run_closed_loop(6, None).expect("plain run");
    let plain_export = plain.tenants_export();

    // Baseline B: segmented, no migrations — segment barriers alone
    // must not change a single tenant-observable byte.
    let mut control = build_cluster(2);
    let (control_accepted, control_log) = control
        .run_segmented_closed_loop(&[3, 3], None, &MigrationPolicy::default())
        .expect("segmented control");
    assert!(control_log.is_empty(), "default policy must not migrate");
    assert_eq!(plain_accepted, control_accepted);
    assert_eq!(
        plain_export,
        control.tenants_export(),
        "segment barriers changed the export"
    );

    // The migrated run: one tenant crosses shards mid-run.
    let mut migrated = build_cluster(2);
    let (g, policy) = move_one(&migrated);
    let (accepted, log) = migrated
        .run_segmented_closed_loop(&[3, 3], None, &policy)
        .expect("migrated run");
    assert_eq!(log.len(), 1, "exactly one migration record");
    assert_eq!(log[0].global, g);
    assert_eq!(log[0].from, 0);
    assert_eq!(log[0].trigger, MigrationTrigger::Planned);
    assert!(
        matches!(log[0].outcome, MigrationOutcome::Adopted { to: 1, .. }),
        "clean migration must adopt: {:?}",
        log[0].outcome
    );
    assert_eq!(migrated.placement(g).0, 1, "tenant must land on shard 1");
    assert!(
        migrated.seal_floor(g) > 0,
        "migration must advance the seal-counter floor"
    );

    assert_eq!(plain_accepted, accepted, "migration changed acceptance");
    assert_eq!(
        plain_export,
        migrated.tenants_export(),
        "migration is visible in the per-tenant export"
    );
}

#[test]
fn observed_migration_run_reconciles_and_drops_nothing() {
    let mut control = build_cluster(2);
    let (_, control_tl, _) = control
        .run_segmented_closed_loop_observed(
            &[3, 3],
            None,
            &MigrationPolicy::default(),
            SamplerConfig::default(),
        )
        .expect("observed control");

    let mut cluster = build_cluster(2);
    let (g, policy) = move_one(&cluster);
    let (accepted, timeline, log) = cluster
        .run_segmented_closed_loop_observed(&[3, 3], None, &policy, SamplerConfig::default())
        .expect("observed migrated run");
    assert!(matches!(log[0].outcome, MigrationOutcome::Adopted { .. }));

    // Exactly one totals line per global tenant, in global order, even
    // though tenant `g`'s history spans two shards' samplers.
    let ids: Vec<usize> = timeline.totals.iter().map(|t| t.tenant).collect();
    assert_eq!(ids, (0..TENANTS).collect::<Vec<usize>>());

    // Zero dropped requests: cluster-wide and per tenant.
    let report = cluster.report();
    assert_eq!(
        report.completed() + report.shed_requests(),
        accepted,
        "an accepted request was dropped"
    );
    for t in &timeline.totals {
        assert_eq!(
            t.accepted,
            t.completed + t.shed,
            "tenant {} dropped a request",
            t.tenant
        );
    }

    // The invariant plane survives the migration byte-for-byte.
    for (m, c) in timeline.totals.iter().zip(&control_tl.totals) {
        assert_eq!(m.tenant, c.tenant);
        assert_eq!(
            m.digest, c.digest,
            "tenant {} reply digest changed across the migration",
            m.tenant
        );
        assert_eq!(
            (m.accepted, m.completed, m.shed),
            (c.accepted, c.completed, c.shed)
        );
    }
    assert_eq!(timeline.checkpoints, control_tl.checkpoints);

    // The migration phases show up against the migrated tenant.
    let kinds: Vec<&str> = timeline
        .all_windows()
        .flat_map(|w| w.recoveries.iter())
        .map(|r| r.kind.name())
        .collect();
    for phase in [
        "migrate_quiesce",
        "migrate_seal",
        "migrate_remove",
        "migrate_rebuild",
        "migrate_resume",
    ] {
        assert!(
            kinds.contains(&phase),
            "missing {phase} for tenant {g}: {kinds:?}"
        );
    }
}

#[test]
fn chaos_migrations_are_deterministic_and_lose_nothing() {
    let run = || {
        let mut cluster = build_cluster(2);
        let (accepted, log) = cluster
            .run_segmented_closed_loop(
                &[2, 2, 2],
                Some(("aex+migrate:5", SEED ^ 0xC4A0_5EED)),
                &MigrationPolicy::default(),
            )
            .expect("chaos migrated run");
        let report = cluster.report();
        assert_eq!(
            report.completed() + report.shed_requests(),
            accepted,
            "reply-or-shed violated under chaos migration"
        );
        for r in &log {
            assert_eq!(r.trigger, MigrationTrigger::Chaos);
            // Both arms keep the tenant placed somewhere real.
            let (s, l) = cluster.placement(r.global);
            assert_eq!(cluster.shards()[s].globals[l], r.global);
        }
        let stats = cluster.chaos_stats().expect("chaos stats");
        (
            accepted,
            stats.migrations,
            log.len(),
            cluster.tenants_export(),
        )
    };
    let a = run();
    let b = run();
    assert!(a.1 > 0, "chaos plan injected no migration requests");
    assert!(a.2 > 0, "no chaos-triggered migration reached a barrier");
    assert_eq!(a, b, "chaos migration run is not byte-deterministic");
}

#[test]
fn epc_pressure_evacuates_a_tenant_at_the_barrier() {
    // An absurdly high low-water mark forces every barrier to evacuate
    // the biggest movable tenant from every shard — the policy arm of
    // barrier_moves, exercised without hardware re-sizing.
    let mut cluster = build_cluster(2);
    let policy = MigrationPolicy {
        moves: Vec::new(),
        epc_low_water: Some(usize::MAX),
    };
    let (accepted, log) = cluster
        .run_segmented_closed_loop(&[3, 3], None, &policy)
        .expect("pressure run");
    assert!(!log.is_empty(), "pressure policy never fired");
    for r in &log {
        assert_eq!(r.trigger, MigrationTrigger::EpcPressure);
        assert!(matches!(r.outcome, MigrationOutcome::Adopted { .. }));
    }
    let report = cluster.report();
    assert_eq!(report.completed() + report.shed_requests(), accepted);

    // Still byte-identical to the unmigrated world.
    let mut plain = build_cluster(2);
    plain.run_closed_loop(6, None).expect("plain run");
    assert_eq!(plain.tenants_export(), cluster.tenants_export());
}

#[test]
fn stale_snapshot_replay_is_refused_cross_shard() {
    let mut cluster = build_cluster(2);
    let g = tenant_on_shard(&cluster, 0);
    let (s, l) = cluster.placement(g);
    let other = 1 - s;

    // Seal once (the blob an attacker later replays), put the tenant
    // back, then seal again so the world has moved on.
    let stale = cluster.shards_mut()[s]
        .server
        .extract_tenant(l)
        .expect("first extract");
    let l2 = cluster.shards_mut()[s]
        .server
        .rollback_tenant(&stale, stale.seal_counter)
        .expect("reinstate");
    let fresh = cluster.shards_mut()[s]
        .server
        .extract_tenant(l2)
        .expect("second extract");
    assert!(
        fresh.seal_counter > stale.seal_counter,
        "every seal must advance the monotonic counter"
    );

    // Replaying the stale snapshot against the fresh floor is refused
    // with the typed rollback error naming both counters.
    let err = cluster.shards_mut()[other]
        .server
        .adopt_tenant(&stale, fresh.seal_counter)
        .expect_err("stale replay must be refused");
    match err {
        HostError::StateRollback {
            presented,
            expected,
            ..
        } => {
            assert_eq!(presented, stale.seal_counter);
            assert_eq!(expected, fresh.seal_counter);
        }
        other => panic!("want StateRollback, got {other}"),
    }

    // The genuine snapshot still adopts at the same floor.
    cluster.shards_mut()[other]
        .server
        .adopt_tenant(&fresh, fresh.seal_counter)
        .expect("fresh snapshot adopts");
}

#[test]
fn migrate_tenant_validates_the_placement() {
    let mut cluster = build_cluster(2);
    let g = tenant_on_shard(&cluster, 0);
    let bad = |r: Result<MigrationOutcome, HostError>| {
        assert!(
            matches!(r, Err(HostError::BadRequest(_))),
            "want BadRequest"
        );
    };
    bad(cluster.migrate_tenant(TENANTS + 7, 0, 1)); // no such tenant
    bad(cluster.migrate_tenant(g, 1, 0)); // wrong source shard
    bad(cluster.migrate_tenant(g, 0, 0)); // already there
    bad(cluster.migrate_tenant(g, 0, 9)); // no such shard

    // A valid round trip works on an idle cluster, advancing the floor
    // each way.
    assert!(matches!(
        cluster.migrate_tenant(g, 0, 1).expect("migrate out"),
        MigrationOutcome::Adopted { to: 1, .. }
    ));
    let floor_out = cluster.seal_floor(g);
    assert!(floor_out > 0);
    assert_eq!(cluster.placement(g).0, 1);
    assert!(matches!(
        cluster.migrate_tenant(g, 1, 0).expect("migrate home"),
        MigrationOutcome::Adopted { to: 0, .. }
    ));
    assert!(cluster.seal_floor(g) > floor_out, "floor must keep rising");
    assert_eq!(cluster.placement(g).0, 0);
}

#[test]
fn rollback_on_a_full_destination_keeps_the_tenant_serving() {
    // Probe with roomy hardware to learn each shard's EPC footprint,
    // then rebuild with PRM sized so the fullest shard has exactly the
    // admission low-water headroom free: its own tenants fit, but one
    // more adoption cannot clear `need + epc_low_water`.
    let probe = build_cluster(2);
    let default_prm = ClusterConfig::new(drive::standard_specs(TENANTS, SERVICES), 2)
        .host
        .hw
        .prm_pages;
    let free_pages: Vec<usize> = probe
        .shards()
        .iter()
        .map(|s| s.server.app.machine.free_epc_pages())
        .collect();
    let to = if free_pages[0] <= free_pages[1] { 0 } else { 1 };
    let from = 1 - to;
    let g = tenant_on_shard(&probe, from);
    let low_water = 64; // AdmissionControl::default().epc_low_water
    drop(probe);

    let mut cfg = ClusterConfig::new(drive::standard_specs(TENANTS, SERVICES), 2);
    cfg.host.seed = SEED;
    cfg.host.hw.prm_pages = default_prm - free_pages[to] as u64 + low_water;
    let mut cluster = Cluster::build(cfg).expect("sized cluster build");
    for t in 0..TENANTS {
        let (s, l) = cluster.placement(t);
        assert!(
            cluster.shards()[s].server.tenants()[l].loaded,
            "sized PRM must still fit every tenant where it was placed"
        );
    }

    let outcome = cluster
        .migrate_tenant(g, from, to)
        .expect("migration completes");
    let local = match outcome {
        MigrationOutcome::RolledBack {
            error: HostError::Sgx(SgxError::EpcFull),
            local,
        } => local,
        other => panic!("want RolledBack(EpcFull), got {other:?}"),
    };

    // The tenant is back on the source shard, loaded, and still serves.
    assert_eq!(cluster.placement(g), (from, local));
    assert!(
        cluster.seal_floor(g) > 0,
        "even a rollback advances the floor"
    );
    let server = &mut cluster.shards_mut()[from].server;
    assert!(
        server.tenants()[local].loaded,
        "rolled-back tenant must be loaded"
    );
    let mut factory = ne_host::RequestFactory::new(
        drive::standard_specs(TENANTS, SERVICES)[g].services[0],
        g,
        SEED,
    );
    let payload = factory.next_request();
    assert!(
        server.submit(local, 0, server.now(), payload).is_accepted(),
        "rolled-back tenant must accept requests"
    );
    server.drain().expect("rolled-back tenant must serve");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Through random segmentations, planned moves, and chaos-injected
    /// migrations, no accepted request is ever dropped and every tenant
    /// stays placed and exported.
    #[test]
    fn migration_interleavings_never_drop_requests(
        shards in 1usize..4,
        seg_a in 1usize..4,
        seg_b in 1usize..4,
        mover in 0usize..TENANTS,
        dest in 0usize..3,
        chaos in any::<bool>(),
    ) {
        let mut cluster = build_cluster(shards);
        let policy = MigrationPolicy {
            moves: vec![PlannedMove { segment: 0, global: mover, to_shard: dest % shards }],
            epc_low_water: None,
        };
        let spec = format!("aex+migrate:{}", 3 + seg_a);
        let chaos_spec = chaos.then_some((spec.as_str(), SEED ^ 0x5EED));
        let (accepted, log) = cluster
            .run_segmented_closed_loop(&[seg_a, seg_b], chaos_spec, &policy)
            .map_err(TestCaseError::Fail)?;
        let report = cluster.report();
        prop_assert_eq!(
            report.completed() + report.shed_requests(),
            accepted,
            "an accepted request was dropped"
        );
        for r in &log {
            let (s, l) = cluster.placement(r.global);
            prop_assert_eq!(cluster.shards()[s].globals[l], r.global);
        }
        let export = cluster.tenants_export();
        for g in 0..TENANTS {
            prop_assert!(
                export.contains(&format!("tenant {g} ")),
                "tenant {} missing from the export", g
            );
        }
        // A fixed interleaving is byte-reproducible.
        let mut again = build_cluster(shards);
        let (accepted2, _) = again
            .run_segmented_closed_loop(&[seg_a, seg_b], chaos_spec, &policy)
            .map_err(TestCaseError::Fail)?;
        prop_assert_eq!(accepted, accepted2);
        prop_assert_eq!(export, again.tenants_export());
    }
}
