//! The shard-count-invariance oracle and the single-shard regression.
//!
//! * **Invariance**: the clean closed-loop scenario must produce
//!   byte-identical per-tenant exports (`ne-tenants/v1`, global-id
//!   sorted, reply digests included) at 1, 2, and 4 shards, and the
//!   merged metrics report must pass the §5 identity checker at every
//!   shard count.
//! * **Regression**: a one-shard cluster must be bit-compatible with the
//!   unsharded `HostServer` path — same accepted count, same metrics
//!   JSON, same export bytes — so every pre-shard baseline stays valid.

use ne_cluster::{drive, Cluster, ClusterConfig};
use ne_host::{HostConfig, HostServer, RequestFactory};
use ne_obs::SamplerConfig;

const TENANTS: usize = 4;
const SERVICES: usize = 2;
const REQUESTS: usize = 6;
const SEED: u64 = 7;

fn build_cluster(shards: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(drive::standard_specs(TENANTS, SERVICES), shards);
    cfg.host.seed = SEED;
    Cluster::build(cfg).expect("cluster build")
}

fn closed_loop_export(shards: usize) -> (u64, String) {
    let mut cluster = build_cluster(shards);
    let accepted = cluster
        .run_closed_loop(REQUESTS, None)
        .expect("closed loop");
    let merged = cluster.merged_metrics().expect("merge");
    merged
        .check()
        .unwrap_or_else(|e| panic!("merged metrics identity broken at {shards} shards: {e}"));
    (accepted, cluster.tenants_export())
}

#[test]
fn closed_loop_exports_are_shard_count_invariant() {
    let (a1, e1) = closed_loop_export(1);
    let (a2, e2) = closed_loop_export(2);
    let (a4, e4) = closed_loop_export(4);
    assert_eq!(a1, a2, "accepted count changed at 2 shards");
    assert_eq!(a1, a4, "accepted count changed at 4 shards");
    assert_eq!(
        e1, e2,
        "per-tenant export changed at 2 shards:\n{e1}\nvs\n{e2}"
    );
    assert_eq!(
        e1, e4,
        "per-tenant export changed at 4 shards:\n{e1}\nvs\n{e4}"
    );
    // Sanity: every tenant actually appears, in global-id order.
    for g in 0..TENANTS {
        assert!(e1.contains(&format!("tenant {g} name tenant{g} ")));
    }
}

#[test]
fn merged_metrics_are_reproducible_and_close_across_shard_counts() {
    // Cycle attribution is *almost* shard-count-invariant: request
    // payloads and replies are exactly invariant (checked above), but
    // micro-architectural interference (TLB, LLC, EPC pressure) is
    // per-machine, so splitting co-resident tenants apart shifts cycle
    // costs by a hair. Pin that down: any fixed shard count is
    // byte-reproducible, and the in-enclave totals across counts agree
    // to within 0.1%.
    let in_enclave = |shards: usize| {
        let mut cluster = build_cluster(shards);
        cluster
            .run_closed_loop(REQUESTS, None)
            .expect("closed loop");
        let merged = cluster.merged_metrics().expect("merge");
        let total: u64 = merged
            .enclaves
            .iter()
            .filter(|e| e.eid.is_some())
            .map(|e| e.breakdown.total())
            .sum();
        (total, merged.to_json())
    };
    let (one, json1a) = in_enclave(1);
    let (_, json1b) = in_enclave(1);
    assert_eq!(json1a, json1b, "1-shard merged metrics not reproducible");
    let (four, json4a) = in_enclave(4);
    let (_, json4b) = in_enclave(4);
    assert_eq!(json4a, json4b, "4-shard merged metrics not reproducible");
    let diff = one.abs_diff(four) as f64 / one as f64;
    assert!(
        diff < 1e-3,
        "in-enclave cycles drifted {diff:.5} between 1 and 4 shards ({one} vs {four})"
    );
}

#[test]
fn single_shard_cluster_matches_the_unsharded_path() {
    // The unsharded path, exactly as ne-load drives it.
    let mut cfg = HostConfig::new(drive::standard_specs(TENANTS, SERVICES));
    cfg.seed = SEED;
    let mut server = HostServer::build(cfg).expect("host build");
    let mut factories: Vec<Vec<RequestFactory>> = drive::standard_specs(TENANTS, SERVICES)
        .iter()
        .enumerate()
        .map(|(t, spec)| {
            spec.services
                .iter()
                .map(|&k| RequestFactory::new(k, t, SEED))
                .collect()
        })
        .collect();
    // Inline warmup + closed loop mirroring ne-load (drive::warmup needs a
    // Shard, so replay its steps directly on the server).
    for (t, fs) in factories.iter_mut().enumerate() {
        if server.tenants()[t].shed {
            continue;
        }
        for (s, factory) in fs.iter_mut().enumerate() {
            for _ in 0..factory.setup_requests().max(1) {
                let payload = factory.next_request();
                assert!(server.submit(t, s, server.now(), payload).is_accepted());
                server.step().expect("warmup step");
            }
        }
    }
    server.drain().expect("warmup drain");
    server.reset_measurement();
    let mut accepted = 0u64;
    let mut remaining = vec![vec![REQUESTS; SERVICES]; TENANTS];
    for t in 0..TENANTS {
        for s in 0..SERVICES {
            remaining[t][s] -= 1;
            let payload = factories[t][s].next_request();
            if server.submit(t, s, 0, payload).is_accepted() {
                accepted += 1;
            }
        }
    }
    while server.pending() > 0 {
        let Some(c) = server.step().expect("step") else {
            continue;
        };
        if remaining[c.tenant][c.service] > 0 {
            remaining[c.tenant][c.service] -= 1;
            let payload = factories[c.tenant][c.service].next_request();
            if server
                .submit(c.tenant, c.service, c.end, payload)
                .is_accepted()
            {
                accepted += 1;
            }
        }
    }
    let direct_metrics = server.app.machine.metrics();

    // The one-shard cluster path.
    let mut cluster = build_cluster(1);
    let cluster_accepted = cluster
        .run_closed_loop(REQUESTS, None)
        .expect("closed loop");
    let merged = cluster.merged_metrics().expect("merge");

    assert_eq!(accepted, cluster_accepted, "accepted count differs");
    assert_eq!(
        direct_metrics.to_json(),
        merged.to_json(),
        "one-shard cluster metrics are not byte-identical to the unsharded path"
    );
}

#[test]
fn open_loop_offered_schedule_is_shard_count_invariant() {
    // Open-loop acceptance is capacity-dependent (each shard is its own
    // machine), so the oracle for this mode is weaker: the *offered*
    // schedule is global, and every accepted request still terminates
    // with a valid reply on every shard count.
    for shards in [1usize, 3] {
        let mut cluster = build_cluster(shards);
        let accepted = cluster.run_open_loop(REQUESTS, None).expect("open loop");
        let report = cluster.report();
        assert_eq!(report.sched.invariant_violations, 0);
        assert_eq!(
            report.completed() + report.shed_requests(),
            accepted,
            "accepted request lost at {shards} shards"
        );
        cluster
            .merged_metrics()
            .expect("merge")
            .check()
            .unwrap_or_else(|e| panic!("open-loop metrics broken at {shards} shards: {e}"));
    }
}

#[test]
fn chaos_runs_are_deterministic_per_shard_count() {
    // Chaos draws from the per-shard stream, so exports differ across
    // shard counts — but any fixed shard count must be byte-reproducible.
    let run = |shards: usize| {
        let mut cluster = build_cluster(shards);
        let accepted = cluster
            .run_closed_loop(REQUESTS, Some(("aex+evict", SEED ^ 0xC4A0_5EED)))
            .expect("chaos closed loop");
        let report = cluster.report();
        assert_eq!(
            report.completed() + report.shed_requests(),
            accepted,
            "reply-or-shed violated under chaos at {shards} shards"
        );
        let stats = cluster.chaos_stats().expect("chaos stats");
        assert!(stats.eenters_seen > 0, "chaos plan saw no traffic");
        cluster
            .merged_metrics()
            .expect("merge")
            .check()
            .expect("identities");
        cluster.tenants_export()
    };
    assert_eq!(run(2), run(2), "chaos run not reproducible at 2 shards");
}

/// One observed closed-loop run: accepted count plus the `ne-obs/v1`
/// export of the folded timeline.
fn observed_export(shards: usize, chaos: Option<(&str, u64)>) -> (u64, String) {
    let mut cluster = build_cluster(shards);
    let (accepted, timeline) = cluster
        .run_closed_loop_observed(REQUESTS, chaos, SamplerConfig::default())
        .expect("observed closed loop");
    (accepted, ne_obs::to_jsonl(&timeline, "shard-invariance"))
}

#[test]
fn timeline_export_is_reproducible_under_chaos() {
    // The full timeline — cycle-bearing windows, injections, recoveries,
    // SLO states, incidents — must be byte-reproducible at a fixed shard
    // count, chaos included.
    let chaos = Some(("aex+evict", SEED ^ 0xC4A0_5EED));
    let (a1, e1) = observed_export(2, chaos);
    let (a2, e2) = observed_export(2, chaos);
    assert_eq!(a1, a2, "accepted count not reproducible");
    assert_eq!(e1, e2, "observed chaos timeline not byte-reproducible");
    assert!(
        e1.contains("\"kind\":\"incident\""),
        "chaos left no incident"
    );
}

#[test]
fn timeline_invariant_plane_is_shard_count_invariant() {
    // Cycle-bearing lines drift slightly across shard counts (see the
    // merged-metrics test above), but the invariant plane — rolling
    // checkpoints and per-tenant reply digests — is derived purely from
    // reply bytes in (service, seq) order, so those lines must be
    // byte-identical at every shard count.
    let invariant_plane = |export: &str| -> String {
        export
            .lines()
            .filter(|l| {
                l.contains("\"kind\":\"checkpoint\"") || l.contains("\"kind\":\"tenant_total\"")
            })
            .map(|l| format!("{l}\n"))
            .collect()
    };
    let (a1, e1) = observed_export(1, None);
    let (a4, e4) = observed_export(4, None);
    assert_eq!(a1, a4, "accepted count changed at 4 shards");
    let (p1, p4) = (invariant_plane(&e1), invariant_plane(&e4));
    assert!(
        p1.lines().count() > TENANTS,
        "invariant plane unexpectedly thin:\n{p1}"
    );
    assert_eq!(
        p1, p4,
        "timeline invariant plane changed between 1 and 4 shards"
    );
}

#[test]
fn observed_runs_leave_the_simulation_untouched() {
    // The sampler only reads, so an observed run must report the same
    // accepted count and per-tenant export as the plain run, and the
    // timeline totals must reconcile with the merged metrics.
    let mut plain = build_cluster(2);
    let plain_accepted = plain.run_closed_loop(REQUESTS, None).expect("closed loop");
    let plain_export = plain.tenants_export();

    let mut observed = build_cluster(2);
    let (accepted, timeline) = observed
        .run_closed_loop_observed(REQUESTS, None, SamplerConfig::default())
        .expect("observed closed loop");
    assert_eq!(plain_accepted, accepted, "observation changed acceptance");
    assert_eq!(
        plain_export,
        observed.tenants_export(),
        "observation changed the per-tenant export"
    );
    let merged = observed.merged_metrics().expect("merge");
    let (cycles, _, _) = timeline.total();
    assert_eq!(cycles, merged.total_cycles, "timeline cycles must match");
    assert_eq!(
        timeline.totals.iter().map(|t| t.completed).sum::<u64>(),
        observed.report().completed(),
        "timeline totals must match the cluster report"
    );
}

/// One closed-loop run with the macro-op replay cache toggled.
fn replay_export(shards: usize, replay: bool) -> (u64, String, Option<ne_host::ReplayCacheStats>) {
    let mut cfg = ClusterConfig::new(drive::standard_specs(TENANTS, SERVICES), shards);
    cfg.host.seed = SEED;
    cfg.host.replay_cache = replay;
    let mut cluster = Cluster::build(cfg).expect("cluster build");
    let accepted = cluster
        .run_closed_loop(REQUESTS, None)
        .expect("closed loop");
    cluster
        .merged_metrics()
        .expect("merge")
        .check()
        .unwrap_or_else(|e| panic!("identities broken at {shards} shards replay={replay}: {e}"));
    (accepted, cluster.tenants_export(), cluster.replay_stats())
}

#[test]
fn replay_cache_is_invisible_at_every_shard_count() {
    // Each shard owns an independent cache; flipping the flag must leave
    // the per-tenant export (reply digests included) byte-identical at
    // every shard count, and the caches must actually engage so the
    // check is not vacuous.
    for shards in [1usize, 2, 4] {
        let (a_off, e_off, r_off) = replay_export(shards, false);
        let (a_on, e_on, r_on) = replay_export(shards, true);
        assert!(r_off.is_none(), "cache-off cluster reported stats");
        assert_eq!(a_off, a_on, "accepted count changed at {shards} shards");
        assert_eq!(
            e_off, e_on,
            "per-tenant export changed with replay on at {shards} shards"
        );
        let stats = r_on.expect("cache-on cluster reports stats");
        assert!(
            stats.hits > 0,
            "no replay hits at {shards} shards: {stats:?}"
        );
    }
    // And cache-on runs stay shard-count invariant among themselves.
    let (_, e1, _) = replay_export(1, true);
    let (_, e4, _) = replay_export(4, true);
    assert_eq!(e1, e4, "cache-on export changed between 1 and 4 shards");
}

#[test]
fn replies_check_against_fresh_global_factories() {
    let mut cluster = build_cluster(3);
    cluster
        .run_closed_loop(REQUESTS, None)
        .expect("closed loop");
    let specs = drive::standard_specs(TENANTS, SERVICES);
    let mut checked = 0usize;
    for (global, c) in cluster.completions() {
        let f = RequestFactory::new(specs[global].services[c.service], global, SEED);
        assert!(
            f.check_reply(&c.reply),
            "bad reply for global tenant {global} service {}",
            c.service
        );
        checked += 1;
    }
    assert!(checked > 0, "no completions to check");
}
