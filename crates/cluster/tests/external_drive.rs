//! The external-drive equivalence oracle: the [`RequestSource`]-driven
//! loops ([`drive::warmup_external`], [`drive::closed_loop_external`],
//! [`drive::open_loop_external`]) fed by the reference
//! [`FactorySource`] must be **byte-identical** to the plain factory
//! loops in every export — accepted counts, the `ne-tenants/v1` export,
//! and the merged `ne-metrics/v2` JSON, clean and under chaos.
//!
//! This is the in-process half of the `ne-serve` wire-oracle invariant:
//! the wire source only has to match `FactorySource`, and this test
//! pins `FactorySource` to the historic loops.

use ne_cluster::{drive, shard_seed, Cluster, ClusterConfig, FactorySource};
use ne_sgx::fault::FaultPlan;

const SEED: u64 = 0x5E12_4E57;
const CHAOS_BASE: u64 = SEED ^ 0xC4A0_5EED;

fn build(tenants: usize, services: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(drive::standard_specs(tenants, services), 1);
    cfg.host.seed = SEED;
    Cluster::build(cfg).expect("cluster build")
}

fn exports(cluster: &Cluster) -> (String, String) {
    let metrics = cluster.merged_metrics().expect("metrics merge");
    metrics.check().expect("metrics identities");
    (cluster.tenants_export(), metrics.to_json())
}

/// Plain closed loop on one cluster, external closed loop on another;
/// same bytes out.
fn assert_closed_equivalent(tenants: usize, services: usize, requests: usize, chaos: Option<&str>) {
    let mut plain = build(tenants, services);
    let expected_accepted = plain
        .run_closed_loop(requests, chaos.map(|spec| (spec, CHAOS_BASE)))
        .expect("plain closed run");
    let expected = exports(&plain);

    let mut external = build(tenants, services);
    let shard = &mut external.shards_mut()[0];
    let mut factories = drive::factories(shard, SEED);
    let setup = drive::setup_counts(&factories);
    let mut source = FactorySource::new(&mut factories, requests);
    drive::warmup_external(shard, &mut source, &setup);
    if let Some(spec) = chaos {
        let plan = FaultPlan::parse(spec, shard_seed(CHAOS_BASE, shard.id)).expect("chaos spec");
        shard.server.install_chaos(plan);
    }
    let accepted = drive::closed_loop_external(shard, &mut source, &mut |_| {});

    assert_eq!(accepted, expected_accepted, "accepted diverged");
    assert_eq!(exports(&external), expected, "exports diverged");
}

/// Plain open loop vs external open loop over the same global schedule.
fn assert_open_equivalent(tenants: usize, services: usize, requests: usize, chaos: Option<&str>) {
    let mut plain = build(tenants, services);
    let expected_accepted = plain
        .run_open_loop(requests, chaos.map(|spec| (spec, CHAOS_BASE)))
        .expect("plain open run");
    let expected = exports(&plain);

    let mut external = build(tenants, services);
    let shard = &mut external.shards_mut()[0];
    // One shard: the global pair list is the local one, in order.
    let pairs: Vec<(usize, usize)> = (0..tenants)
        .flat_map(|t| (0..services).map(move |s| (t, s)))
        .collect();
    let schedule = drive::poisson_schedule(&pairs, requests, SEED);
    let mut factories = drive::factories(shard, SEED);
    let setup = drive::setup_counts(&factories);
    let mut source = FactorySource::new(&mut factories, requests);
    drive::warmup_external(shard, &mut source, &setup);
    if let Some(spec) = chaos {
        let plan = FaultPlan::parse(spec, shard_seed(CHAOS_BASE, shard.id)).expect("chaos spec");
        shard.server.install_chaos(plan);
    }
    let accepted = drive::open_loop_external(shard, &mut source, &schedule, &mut |_| {});

    assert_eq!(accepted, expected_accepted, "accepted diverged");
    assert_eq!(exports(&external), expected, "exports diverged");
}

#[test]
fn closed_external_matches_plain() {
    assert_closed_equivalent(3, 2, 5, None);
}

#[test]
fn open_external_matches_plain() {
    assert_open_equivalent(3, 2, 5, None);
}

#[test]
fn closed_external_matches_plain_under_chaos() {
    // crash sheds whole tenants mid-run; the external loop must take the
    // exact same counter path (including rejected resubmits).
    for spec in ["aex+evict", "crash:3", "aex:2+mac:5+stall:4"] {
        assert_closed_equivalent(3, 2, 5, Some(spec));
    }
}

#[test]
fn open_external_matches_plain_under_chaos() {
    for spec in ["aex+evict", "crash:3"] {
        assert_open_equivalent(3, 2, 5, Some(spec));
    }
}
