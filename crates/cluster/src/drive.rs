//! Shard drivers: the load-generator loops, factored out of the
//! unsharded `ne-load` harness **byte for byte** so a one-shard cluster
//! reproduces its exact request streams, arrival times, and replies.
//!
//! Two things differ from the unsharded code, both required for
//! shard-count invariance and neither observable at one shard:
//!
//! * request factories are keyed by the tenant's **global** id
//!   ([`crate::Shard::globals`]), not its local slot, so a tenant's
//!   payload stream survives re-placement;
//! * the open-loop Poisson schedule is generated **globally**
//!   ([`poisson_schedule`], same RNG and salt as `ne-load`) and routed to
//!   shards afterwards, so offered arrival times do not depend on the
//!   shard count.

use crate::cluster::Shard;
use ne_host::server::HostServer;
use ne_host::{RequestFactory, ServiceKind, TenantSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mean inter-arrival gap of the open-loop Poisson process, in cycles
/// across all tenants — the same constant the unsharded `ne-load`
/// harness uses (roughly 70% utilization of three serving cores at the
/// mixed-service cost).
pub const MEAN_GAP_CYCLES: f64 = 120_000.0;

/// Salt XORed into the base seed for the open-loop arrival RNG; matches
/// `ne-load` so the global schedule is byte-identical to the unsharded
/// harness's.
pub const OPEN_LOOP_SALT: u64 = 0x5EED_AD11;

/// The standard tenant population the load harnesses use: `tenant{i}`
/// with priority `tenants - i` (earlier tenants more important) and
/// `services` service kinds cycling through [`ServiceKind::ALL`].
pub fn standard_specs(tenants: usize, services: usize) -> Vec<TenantSpec> {
    (0..tenants)
        .map(|i| {
            let kinds: Vec<ServiceKind> = (0..services)
                .map(|s| ServiceKind::ALL[s % ServiceKind::ALL.len()])
                .collect();
            TenantSpec::new(&format!("tenant{i}"), (tenants - i) as u8, kinds)
        })
        .collect()
}

/// The global open-loop Poisson arrival schedule: `requests` arrivals per
/// `(tenant, service)` pair, round-robin over `pairs`, with exponential
/// inter-arrival gaps of mean [`MEAN_GAP_CYCLES`] drawn from
/// `StdRng(seed ^ OPEN_LOOP_SALT)`. Entries are `(tenant, service, at)`
/// with whatever id space `pairs` carries (the cluster passes global
/// tenant ids and rewrites them to shard-local slots while routing).
pub fn poisson_schedule(
    pairs: &[(usize, usize)],
    requests: usize,
    seed: u64,
) -> Vec<(usize, usize, u64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ OPEN_LOOP_SALT);
    let mut schedule = Vec::with_capacity(requests * pairs.len());
    let mut at = 0u64;
    for i in 0..requests * pairs.len() {
        let u: f64 = rng.gen_range(0.0..1.0);
        at += (-(1.0 - u).ln() * MEAN_GAP_CYCLES) as u64;
        let (t, s) = pairs[i % pairs.len()];
        schedule.push((t, s, at));
    }
    schedule
}

/// One factory per (local tenant, service) on the shard, keyed by the
/// tenant's **global** id so the payload stream is placement-invariant.
pub fn factories(shard: &Shard, seed: u64) -> Vec<Vec<RequestFactory>> {
    shard
        .server
        .tenants()
        .iter()
        .enumerate()
        .map(|(l, state)| {
            state
                .spec
                .services
                .iter()
                .map(|&k| RequestFactory::new(k, shard.globals[l], seed))
                .collect()
        })
        .collect()
}

/// Serves every provisioning request (db schema + pre-loads; at least one
/// request per service to warm the paths), drains, and resets the
/// measurement window so the measured runs see only steady-state work.
pub fn warmup(shard: &mut Shard, factories: &mut [Vec<RequestFactory>]) {
    let server = &mut shard.server;
    for (t, tenant_factories) in factories.iter_mut().enumerate() {
        if server.tenants()[t].shed {
            continue;
        }
        for (s, factory) in tenant_factories.iter_mut().enumerate() {
            for _ in 0..factory.setup_requests().max(1) {
                let payload = factory.next_request();
                assert!(
                    server.submit(t, s, server.now(), payload).is_accepted(),
                    "warmup request rejected (queue bound too small for setup?)"
                );
                // Serve as we go so setup never trips the queue bound.
                server.step().expect("warmup step");
            }
        }
    }
    server.drain().expect("warmup drain");
    server.reset_measurement();
}

/// Offered-load run over a pre-routed arrival schedule (`(local tenant,
/// service, at)`): arrivals are submitted on time regardless of
/// completions; full queues reject (backpressure). Returns accepted.
pub fn open_loop(
    shard: &mut Shard,
    factories: &mut [Vec<RequestFactory>],
    schedule: &[(usize, usize, u64)],
) -> u64 {
    open_loop_with(shard, factories, schedule, &mut |_| {})
}

/// [`open_loop`] with an observer called after every server step (the
/// observability sampler polls the serving clock here). The observer
/// only reads, so driving with a no-op observer is byte-identical to
/// [`open_loop`].
pub fn open_loop_with(
    shard: &mut Shard,
    factories: &mut [Vec<RequestFactory>],
    schedule: &[(usize, usize, u64)],
    observe: &mut dyn FnMut(&HostServer),
) -> u64 {
    let server = &mut shard.server;
    let mut accepted = 0u64;
    let mut i = 0;
    while i < schedule.len() || server.pending() > 0 {
        // Submit everything that has arrived by the serving clock; when
        // the server is idle, jump to the next arrival.
        while i < schedule.len() && (schedule[i].2 <= server.now() || server.pending() == 0) {
            let (t, s, at) = schedule[i];
            i += 1;
            let payload = factories[t][s].next_request();
            if server.submit(t, s, at, payload).is_accepted() {
                accepted += 1;
            }
        }
        if server.pending() > 0 {
            server.step().expect("open-loop step");
            observe(server);
        }
    }
    accepted
}

/// What a [`RequestSource`] produced for one `pull`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pulled {
    /// The pair's next request payload.
    Request(Vec<u8>),
    /// The pair has no further requests (graceful end of stream).
    Done,
    /// The pair stopped producing before its stream ended (a wire
    /// client hit its read deadline, broke the connection, or violated
    /// the protocol). The driver sheds the whole tenant via
    /// [`HostServer::shed_tenant`].
    Stalled,
}

/// Where an external drive loop gets its request payloads and posts its
/// results — the seam between the simulation-stepping loops below and a
/// transport (the `ne-serve` TCP front door) or an in-process stand-in
/// ([`FactorySource`]).
///
/// The contract that keeps external drives byte-identical to the plain
/// loops: `pull` may block on wall-clock I/O but must not touch the
/// simulation, and for a well-behaved source it returns exactly the
/// payload stream a [`RequestFactory`] keyed by the same `(seed, global
/// tenant)` would produce. `deliver` and `rejected` are notifications
/// only (the driver ignores their effects entirely).
pub trait RequestSource {
    /// Produces the next request payload for `(tenant, service)`.
    fn pull(&mut self, tenant: usize, service: usize) -> Pulled;
    /// Reports a completion for `(tenant, service)` (reply delivery).
    fn deliver(&mut self, tenant: usize, service: usize, completion: &ne_host::Completion);
    /// Reports that the pair's last pulled request was rejected by
    /// admission (backpressure or shed).
    fn rejected(&mut self, tenant: usize, service: usize);
}

/// Warmup request counts per (tenant, service): each pair serves its
/// provisioning requests plus at least one path-warming request —
/// exactly [`warmup`]'s per-factory loop bound.
pub fn setup_counts(factories: &[Vec<RequestFactory>]) -> Vec<Vec<usize>> {
    factories
        .iter()
        .map(|fs| fs.iter().map(|f| f.setup_requests().max(1)).collect())
        .collect()
}

/// A [`RequestSource`] backed by the shard's own [`RequestFactory`]s —
/// the reference implementation of the source contract. Driving
/// [`closed_loop_external`] / [`open_loop_external`] with a
/// `FactorySource` is byte-identical to [`closed_loop`] / [`open_loop`]
/// (asserted by test); the `ne-serve` wire source must match it.
pub struct FactorySource<'a> {
    factories: &'a mut [Vec<RequestFactory>],
    /// Warmup requests still to serve per pair, consumed first — the
    /// stream position a wire client's fire-and-forget warmup frames
    /// occupy.
    warmup: Vec<Vec<usize>>,
    /// Measured requests still to serve per pair.
    remaining: Vec<Vec<usize>>,
}

impl<'a> FactorySource<'a> {
    /// A source serving each pair's setup requests and then `requests`
    /// measured ones from `factories`.
    pub fn new(factories: &'a mut [Vec<RequestFactory>], requests: usize) -> FactorySource<'a> {
        let warmup = setup_counts(factories);
        let remaining = factories
            .iter()
            .map(|fs| vec![requests; fs.len()])
            .collect();
        FactorySource {
            factories,
            warmup,
            remaining,
        }
    }
}

impl RequestSource for FactorySource<'_> {
    fn pull(&mut self, tenant: usize, service: usize) -> Pulled {
        if self.warmup[tenant][service] > 0 {
            self.warmup[tenant][service] -= 1;
        } else if self.remaining[tenant][service] > 0 {
            self.remaining[tenant][service] -= 1;
        } else {
            return Pulled::Done;
        }
        Pulled::Request(self.factories[tenant][service].next_request())
    }

    fn deliver(&mut self, _tenant: usize, _service: usize, _completion: &ne_host::Completion) {}

    fn rejected(&mut self, _tenant: usize, _service: usize) {}
}

/// [`warmup`] driven from a [`RequestSource`]: serves `setup[t][s]`
/// requests per live pair (see [`setup_counts`]), drains, and resets the
/// measurement window. A pair that stalls or ends early gets its whole
/// tenant shed ([`HostServer::shed_tenant`]) and the tenant's remaining
/// warmup is skipped — the measured loops then treat it exactly like a
/// tenant shed at admission.
pub fn warmup_external(shard: &mut Shard, source: &mut dyn RequestSource, setup: &[Vec<usize>]) {
    let server = &mut shard.server;
    'tenants: for (t, counts) in setup.iter().enumerate() {
        if server.tenants()[t].shed {
            continue;
        }
        for (s, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                match source.pull(t, s) {
                    Pulled::Request(payload) => {
                        assert!(
                            server.submit(t, s, server.now(), payload).is_accepted(),
                            "warmup request rejected (queue bound too small for setup?)"
                        );
                        server.step().expect("warmup step");
                    }
                    Pulled::Done | Pulled::Stalled => {
                        server.shed_tenant(t);
                        continue 'tenants;
                    }
                }
            }
        }
    }
    server.drain().expect("warmup drain");
    server.reset_measurement();
}

/// [`open_loop_with`] driven from a [`RequestSource`]: the same arrival
/// schedule, submit and step sequence — arrival stamps come from the
/// schedule, never from wall clock, so a blocking `pull` cannot perturb
/// the simulation. Byte-identical to [`open_loop`] for a well-behaved
/// source; a stalled pair sheds its tenant and its later arrivals are
/// dropped (the only divergence, and only under client failure).
pub fn open_loop_external(
    shard: &mut Shard,
    source: &mut dyn RequestSource,
    schedule: &[(usize, usize, u64)],
    observe: &mut dyn FnMut(&HostServer),
) -> u64 {
    let server = &mut shard.server;
    let mut live: Vec<Vec<bool>> = server
        .tenants()
        .iter()
        .map(|t| vec![true; t.spec.services.len()])
        .collect();
    let mut accepted = 0u64;
    let mut i = 0;
    while i < schedule.len() || server.pending() > 0 {
        while i < schedule.len() && (schedule[i].2 <= server.now() || server.pending() == 0) {
            let (t, s, at) = schedule[i];
            i += 1;
            if !live[t][s] {
                continue;
            }
            match source.pull(t, s) {
                Pulled::Request(payload) => {
                    if server.submit(t, s, at, payload).is_accepted() {
                        accepted += 1;
                    } else {
                        source.rejected(t, s);
                    }
                }
                Pulled::Done => live[t][s] = false,
                Pulled::Stalled => {
                    server.shed_tenant(t);
                    live[t].iter_mut().for_each(|l| *l = false);
                }
            }
        }
        if server.pending() > 0 {
            let stepped = server.step().expect("open-loop step");
            observe(server);
            if let Some(c) = stepped {
                source.deliver(c.tenant, c.service, &c);
            }
        }
    }
    accepted
}

/// [`closed_loop_with`] driven from a [`RequestSource`]: one in-flight
/// request per live pair, resubmitted at the completion time of the
/// previous one. Byte-identical to [`closed_loop`] for a well-behaved
/// source — the pull on the *specific completed pair's* stream re-imposes
/// the deterministic order no matter how the transport interleaves
/// arrivals. A rejected resubmit closes the pair (the client sees a
/// reject notification); a stalled pair sheds its tenant.
pub fn closed_loop_external(
    shard: &mut Shard,
    source: &mut dyn RequestSource,
    observe: &mut dyn FnMut(&HostServer),
) -> u64 {
    let server = &mut shard.server;
    let mut open: Vec<Vec<bool>> = server
        .tenants()
        .iter()
        .map(|t| vec![!t.shed; t.spec.services.len()])
        .collect();
    let mut accepted = 0u64;
    // Prime one in-flight request per live pair, in (tenant, service)
    // order — the same order the plain loop seeds its clients.
    for (t, row) in open.iter_mut().enumerate() {
        let mut stalled = false;
        for (s, live) in row.iter_mut().enumerate() {
            if !*live {
                continue;
            }
            match source.pull(t, s) {
                Pulled::Request(payload) => {
                    if server.submit(t, s, 0, payload).is_accepted() {
                        accepted += 1;
                    } else {
                        source.rejected(t, s);
                        *live = false;
                    }
                }
                Pulled::Done => *live = false,
                Pulled::Stalled => {
                    server.shed_tenant(t);
                    stalled = true;
                    break;
                }
            }
        }
        if stalled {
            row.iter_mut().for_each(|o| *o = false);
        }
    }
    while server.pending() > 0 {
        let stepped = server.step().expect("closed-loop step");
        observe(server);
        let Some(c) = stepped else {
            continue;
        };
        source.deliver(c.tenant, c.service, &c);
        if !open[c.tenant][c.service] {
            continue;
        }
        match source.pull(c.tenant, c.service) {
            Pulled::Request(payload) => {
                if server
                    .submit(c.tenant, c.service, c.end, payload)
                    .is_accepted()
                {
                    accepted += 1;
                } else {
                    source.rejected(c.tenant, c.service);
                    open[c.tenant][c.service] = false;
                }
            }
            Pulled::Done => open[c.tenant][c.service] = false,
            Pulled::Stalled => {
                server.shed_tenant(c.tenant);
                open[c.tenant].iter_mut().for_each(|o| *o = false);
            }
        }
    }
    accepted
}

/// Think-time-free closed loop: one client per (tenant, service); each
/// submits its next request at the completion time of its previous one,
/// `requests` times. Returns accepted.
pub fn closed_loop(
    shard: &mut Shard,
    factories: &mut [Vec<RequestFactory>],
    requests: usize,
) -> u64 {
    closed_loop_with(shard, factories, requests, &mut |_| {})
}

/// [`closed_loop`] with an observer called after every server step (see
/// [`open_loop_with`]).
pub fn closed_loop_with(
    shard: &mut Shard,
    factories: &mut [Vec<RequestFactory>],
    requests: usize,
    observe: &mut dyn FnMut(&HostServer),
) -> u64 {
    let server = &mut shard.server;
    let mut remaining: Vec<Vec<usize>> = factories
        .iter()
        .enumerate()
        .map(|(t, fs)| {
            let n = if server.tenants()[t].shed {
                0
            } else {
                requests
            };
            vec![n; fs.len()]
        })
        .collect();
    let mut accepted = 0u64;
    for t in 0..factories.len() {
        for s in 0..factories[t].len() {
            if remaining[t][s] > 0 {
                remaining[t][s] -= 1;
                let payload = factories[t][s].next_request();
                if server.submit(t, s, 0, payload).is_accepted() {
                    accepted += 1;
                } else {
                    // Shed (e.g. a tripped breaker under chaos): this
                    // client stops; reply-or-shed still holds.
                    remaining[t][s] = 0;
                }
            }
        }
    }
    // A `None` step under chaos means a request was shed, not that the
    // queues are dry — keep stepping until pending work is gone.
    while server.pending() > 0 {
        let stepped = server.step().expect("closed-loop step");
        observe(server);
        let Some(c) = stepped else {
            continue;
        };
        if remaining[c.tenant][c.service] > 0 {
            remaining[c.tenant][c.service] -= 1;
            let payload = factories[c.tenant][c.service].next_request();
            if server
                .submit(c.tenant, c.service, c.end, payload)
                .is_accepted()
            {
                accepted += 1;
            } else {
                remaining[c.tenant][c.service] = 0;
            }
        }
    }
    accepted
}
