//! Shard drivers: the load-generator loops, factored out of the
//! unsharded `ne-load` harness **byte for byte** so a one-shard cluster
//! reproduces its exact request streams, arrival times, and replies.
//!
//! Two things differ from the unsharded code, both required for
//! shard-count invariance and neither observable at one shard:
//!
//! * request factories are keyed by the tenant's **global** id
//!   ([`crate::Shard::globals`]), not its local slot, so a tenant's
//!   payload stream survives re-placement;
//! * the open-loop Poisson schedule is generated **globally**
//!   ([`poisson_schedule`], same RNG and salt as `ne-load`) and routed to
//!   shards afterwards, so offered arrival times do not depend on the
//!   shard count.

use crate::cluster::Shard;
use ne_host::server::HostServer;
use ne_host::{RequestFactory, ServiceKind, TenantSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mean inter-arrival gap of the open-loop Poisson process, in cycles
/// across all tenants — the same constant the unsharded `ne-load`
/// harness uses (roughly 70% utilization of three serving cores at the
/// mixed-service cost).
pub const MEAN_GAP_CYCLES: f64 = 120_000.0;

/// Salt XORed into the base seed for the open-loop arrival RNG; matches
/// `ne-load` so the global schedule is byte-identical to the unsharded
/// harness's.
pub const OPEN_LOOP_SALT: u64 = 0x5EED_AD11;

/// The standard tenant population the load harnesses use: `tenant{i}`
/// with priority `tenants - i` (earlier tenants more important) and
/// `services` service kinds cycling through [`ServiceKind::ALL`].
pub fn standard_specs(tenants: usize, services: usize) -> Vec<TenantSpec> {
    (0..tenants)
        .map(|i| {
            let kinds: Vec<ServiceKind> = (0..services)
                .map(|s| ServiceKind::ALL[s % ServiceKind::ALL.len()])
                .collect();
            TenantSpec::new(&format!("tenant{i}"), (tenants - i) as u8, kinds)
        })
        .collect()
}

/// The global open-loop Poisson arrival schedule: `requests` arrivals per
/// `(tenant, service)` pair, round-robin over `pairs`, with exponential
/// inter-arrival gaps of mean [`MEAN_GAP_CYCLES`] drawn from
/// `StdRng(seed ^ OPEN_LOOP_SALT)`. Entries are `(tenant, service, at)`
/// with whatever id space `pairs` carries (the cluster passes global
/// tenant ids and rewrites them to shard-local slots while routing).
pub fn poisson_schedule(
    pairs: &[(usize, usize)],
    requests: usize,
    seed: u64,
) -> Vec<(usize, usize, u64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ OPEN_LOOP_SALT);
    let mut schedule = Vec::with_capacity(requests * pairs.len());
    let mut at = 0u64;
    for i in 0..requests * pairs.len() {
        let u: f64 = rng.gen_range(0.0..1.0);
        at += (-(1.0 - u).ln() * MEAN_GAP_CYCLES) as u64;
        let (t, s) = pairs[i % pairs.len()];
        schedule.push((t, s, at));
    }
    schedule
}

/// One factory per (local tenant, service) on the shard, keyed by the
/// tenant's **global** id so the payload stream is placement-invariant.
pub fn factories(shard: &Shard, seed: u64) -> Vec<Vec<RequestFactory>> {
    shard
        .server
        .tenants()
        .iter()
        .enumerate()
        .map(|(l, state)| {
            state
                .spec
                .services
                .iter()
                .map(|&k| RequestFactory::new(k, shard.globals[l], seed))
                .collect()
        })
        .collect()
}

/// Serves every provisioning request (db schema + pre-loads; at least one
/// request per service to warm the paths), drains, and resets the
/// measurement window so the measured runs see only steady-state work.
pub fn warmup(shard: &mut Shard, factories: &mut [Vec<RequestFactory>]) {
    let server = &mut shard.server;
    for (t, tenant_factories) in factories.iter_mut().enumerate() {
        if server.tenants()[t].shed {
            continue;
        }
        for (s, factory) in tenant_factories.iter_mut().enumerate() {
            for _ in 0..factory.setup_requests().max(1) {
                let payload = factory.next_request();
                assert!(
                    server.submit(t, s, server.now(), payload).is_accepted(),
                    "warmup request rejected (queue bound too small for setup?)"
                );
                // Serve as we go so setup never trips the queue bound.
                server.step().expect("warmup step");
            }
        }
    }
    server.drain().expect("warmup drain");
    server.reset_measurement();
}

/// Offered-load run over a pre-routed arrival schedule (`(local tenant,
/// service, at)`): arrivals are submitted on time regardless of
/// completions; full queues reject (backpressure). Returns accepted.
pub fn open_loop(
    shard: &mut Shard,
    factories: &mut [Vec<RequestFactory>],
    schedule: &[(usize, usize, u64)],
) -> u64 {
    open_loop_with(shard, factories, schedule, &mut |_| {})
}

/// [`open_loop`] with an observer called after every server step (the
/// observability sampler polls the serving clock here). The observer
/// only reads, so driving with a no-op observer is byte-identical to
/// [`open_loop`].
pub fn open_loop_with(
    shard: &mut Shard,
    factories: &mut [Vec<RequestFactory>],
    schedule: &[(usize, usize, u64)],
    observe: &mut dyn FnMut(&HostServer),
) -> u64 {
    let server = &mut shard.server;
    let mut accepted = 0u64;
    let mut i = 0;
    while i < schedule.len() || server.pending() > 0 {
        // Submit everything that has arrived by the serving clock; when
        // the server is idle, jump to the next arrival.
        while i < schedule.len() && (schedule[i].2 <= server.now() || server.pending() == 0) {
            let (t, s, at) = schedule[i];
            i += 1;
            let payload = factories[t][s].next_request();
            if server.submit(t, s, at, payload).is_accepted() {
                accepted += 1;
            }
        }
        if server.pending() > 0 {
            server.step().expect("open-loop step");
            observe(server);
        }
    }
    accepted
}

/// Think-time-free closed loop: one client per (tenant, service); each
/// submits its next request at the completion time of its previous one,
/// `requests` times. Returns accepted.
pub fn closed_loop(
    shard: &mut Shard,
    factories: &mut [Vec<RequestFactory>],
    requests: usize,
) -> u64 {
    closed_loop_with(shard, factories, requests, &mut |_| {})
}

/// [`closed_loop`] with an observer called after every server step (see
/// [`open_loop_with`]).
pub fn closed_loop_with(
    shard: &mut Shard,
    factories: &mut [Vec<RequestFactory>],
    requests: usize,
    observe: &mut dyn FnMut(&HostServer),
) -> u64 {
    let server = &mut shard.server;
    let mut remaining: Vec<Vec<usize>> = factories
        .iter()
        .enumerate()
        .map(|(t, fs)| {
            let n = if server.tenants()[t].shed {
                0
            } else {
                requests
            };
            vec![n; fs.len()]
        })
        .collect();
    let mut accepted = 0u64;
    for t in 0..factories.len() {
        for s in 0..factories[t].len() {
            if remaining[t][s] > 0 {
                remaining[t][s] -= 1;
                let payload = factories[t][s].next_request();
                if server.submit(t, s, 0, payload).is_accepted() {
                    accepted += 1;
                } else {
                    // Shed (e.g. a tripped breaker under chaos): this
                    // client stops; reply-or-shed still holds.
                    remaining[t][s] = 0;
                }
            }
        }
    }
    // A `None` step under chaos means a request was shed, not that the
    // queues are dry — keep stepping until pending work is gone.
    while server.pending() > 0 {
        let stepped = server.step().expect("closed-loop step");
        observe(server);
        let Some(c) = stepped else {
            continue;
        };
        if remaining[c.tenant][c.service] > 0 {
            remaining[c.tenant][c.service] -= 1;
            let payload = factories[c.tenant][c.service].next_request();
            if server
                .submit(c.tenant, c.service, c.end, payload)
                .is_accepted()
            {
                accepted += 1;
            } else {
                remaining[c.tenant][c.service] = 0;
            }
        }
    }
    accepted
}
