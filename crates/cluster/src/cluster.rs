//! The cluster: N independent machine shards behind one report.
//!
//! [`Cluster::build`] places every tenant on a shard (consistent
//! hashing by name), builds one full [`HostServer`] per shard with the
//! tenant's seeding identity pinned to its **global** id, and keeps the
//! global ↔ (shard, local) mapping so reports and exports can always be
//! presented in global-tenant order — sorted by tenant id everywhere,
//! never in shard or hash order.

use crate::drive;
use crate::ring::{shard_seed, ShardRing};
use ne_host::replay::ReplayCacheStats;
use ne_host::scheduler::SchedulerStats;
use ne_host::server::{HostConfig, HostServer, TenantReport};
use ne_host::tenant::Completion;
use ne_host::{HostResult, TenantSpec};
use ne_obs::{Sampler, SamplerConfig, Timeline};
use ne_sgx::fault::{ChaosStats, FaultPlan};
use ne_sgx::metrics::MachineMetrics;
use ne_sgx::profile::{Histogram, ProfileEvent};
use ne_sgx::spantree::TraceBundle;

/// Cluster configuration: a host-server template plus the shard layout.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Template for every shard's server. Its `tenants` list is the
    /// **global** tenant list (global tenant id = index in this list);
    /// every other field (hardware model, seed, switchless, admission,
    /// recovery) is applied to each shard as-is.
    pub host: HostConfig,
    /// Number of machine shards (≥ 1). Each shard is a fully
    /// independent simulated machine driven by its own OS thread.
    pub shards: usize,
    /// Virtual nodes per shard on the placement ring.
    pub vnodes: usize,
}

impl ClusterConfig {
    /// A cluster over `tenants` with `shards` shards and the default
    /// host template / ring geometry.
    pub fn new(tenants: Vec<TenantSpec>, shards: usize) -> ClusterConfig {
        ClusterConfig {
            host: HostConfig::new(tenants),
            shards,
            vnodes: ShardRing::DEFAULT_VNODES,
        }
    }
}

/// One shard: an independent [`HostServer`] (own machine, own EPC, own
/// scheduler) plus its placement bookkeeping.
pub struct Shard {
    /// Shard index; fixes merge order and id namespacing.
    pub id: usize,
    /// The shard-local seed stream, [`shard_seed`]`(base, id)` — for
    /// shard-local machinery (chaos plans) only.
    pub seed: u64,
    /// Global ids of the tenants on this shard, in global order; entry
    /// `l` is the global id of the shard's local tenant `l`.
    pub globals: Vec<usize>,
    /// The shard's server.
    pub server: HostServer,
}

/// Per-tenant row of a [`ClusterReport`], tagged with the tenant's
/// global id and placement.
#[derive(Debug, Clone)]
pub struct GlobalTenantReport {
    /// Global tenant id (index in the cluster's tenant list).
    pub global: usize,
    /// Shard the tenant was placed on.
    pub shard: usize,
    /// The tenant's report from its shard's server.
    pub report: TenantReport,
}

/// End-of-run summary across every shard, in global-tenant order.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// One row per tenant, sorted by global tenant id.
    pub tenants: Vec<GlobalTenantReport>,
    /// Scheduler counters folded across shards (sums; `max_backlog` is
    /// the max over shards).
    pub sched: SchedulerStats,
    /// Whether the shards ran with a switchless worker core.
    pub switchless: bool,
    /// Switchless→classic reply degradations across shards.
    pub degraded_replies: u64,
}

impl ClusterReport {
    /// Total completions across tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.report.completed).sum()
    }

    /// Total accepted across tenants.
    pub fn accepted(&self) -> u64 {
        self.tenants.iter().map(|t| t.report.accepted).sum()
    }

    /// Total explicit sheds across tenants.
    pub fn shed_requests(&self) -> u64 {
        self.tenants.iter().map(|t| t.report.shed_requests).sum()
    }

    /// Total enclave respawns across tenants.
    pub fn respawns(&self) -> u64 {
        self.tenants.iter().map(|t| t.report.respawns).sum()
    }
}

/// The sharded cluster. See the [crate docs](crate) for the invariants.
pub struct Cluster {
    pub(crate) shards: Vec<Shard>,
    /// `assignment[global] == (shard, local index on that shard)`.
    pub(crate) assignment: Vec<(usize, usize)>,
    pub(crate) seed: u64,
    /// Authoritative per-global-tenant seal-counter floor: the highest
    /// seal counter the cluster has ever extracted for the tenant. A
    /// sealed snapshot below its tenant's floor is a replay of retired
    /// state and every adoption refuses it
    /// ([`ne_host::HostError::StateRollback`]). The floor lives here —
    /// not in any snapshot — because a replayed snapshot is internally
    /// consistent; only the coordinator knows it is old.
    pub(crate) seal_floors: Vec<u64>,
}

impl Cluster {
    /// Builds the cluster: places each tenant with the ring, pins its
    /// seeding identity to its global id, and builds every shard's
    /// server (serially — builds are cheap and a fixed build order keeps
    /// EPC-shedding decisions reproducible).
    ///
    /// # Errors
    ///
    /// Any shard's [`HostServer::build`] failure.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` is zero (via [`ShardRing::new`]).
    pub fn build(cfg: ClusterConfig) -> HostResult<Cluster> {
        let ring = ShardRing::new(cfg.shards, cfg.vnodes);
        let mut specs: Vec<Vec<TenantSpec>> = (0..cfg.shards).map(|_| Vec::new()).collect();
        let mut globals: Vec<Vec<usize>> = (0..cfg.shards).map(|_| Vec::new()).collect();
        let mut assignment = Vec::with_capacity(cfg.host.tenants.len());
        for (g, spec) in cfg.host.tenants.iter().enumerate() {
            let s = ring.shard_of(&spec.name);
            assignment.push((s, specs[s].len()));
            // Pin the seeding identity to the global id unless the caller
            // already pinned one; local slots shift with placement, global
            // ids do not — that is what makes tenant streams
            // shard-layout-invariant.
            let mut spec = spec.clone();
            spec.seed_index = Some(spec.seed_index.unwrap_or(g));
            specs[s].push(spec);
            globals[s].push(g);
        }
        let mut shards = Vec::with_capacity(cfg.shards);
        for (id, (specs, globals)) in specs.into_iter().zip(globals).enumerate() {
            let mut host = cfg.host.clone();
            host.tenants = specs;
            let server = HostServer::build(host)?;
            shards.push(Shard {
                id,
                seed: shard_seed(cfg.host.seed, id),
                globals,
                server,
            });
        }
        let seal_floors = vec![0; assignment.len()];
        Ok(Cluster {
            shards,
            assignment,
            seed: cfg.host.seed,
            seal_floors,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of tenants across the cluster.
    pub fn num_tenants(&self) -> usize {
        self.assignment.len()
    }

    /// The base seed the cluster was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shards, in shard order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Mutable access to the shards, for external drivers (the
    /// `ne-serve` wire front door drives shard 0 of a one-shard cluster
    /// with [`drive::closed_loop_external`] between socket polls).
    pub fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// `(shard, local index)` of a global tenant id.
    pub fn placement(&self, global: usize) -> (usize, usize) {
        self.assignment[global]
    }

    /// The authoritative seal-counter floor for a global tenant: sealed
    /// snapshots with a lower counter are replays and are refused at
    /// adoption. Grows by one with every extraction.
    pub fn seal_floor(&self, global: usize) -> u64 {
        self.seal_floors[global]
    }

    /// Runs `f` once per shard — **one OS thread per shard** — and
    /// returns the results in shard order. The single-shard case runs
    /// inline on the calling thread, so a one-shard cluster is
    /// bit-compatible with (and as debuggable as) the unsharded path.
    pub fn run_parallel<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Shard) -> R + Sync,
    {
        self.run_parallel_with(self.shards.iter().map(|_| ()).collect(), |shard, ()| {
            f(shard)
        })
    }

    /// [`Cluster::run_parallel`] with one owned payload per shard (e.g.
    /// a per-shard arrival schedule or chaos plan). `payloads[i]` goes
    /// to shard `i`.
    ///
    /// # Panics
    ///
    /// Panics if `payloads` is not one per shard, or if a shard thread
    /// panics (the panic is propagated).
    pub fn run_parallel_with<P, R, F>(&mut self, payloads: Vec<P>, f: F) -> Vec<R>
    where
        P: Send,
        R: Send,
        F: Fn(&mut Shard, P) -> R + Sync,
    {
        assert_eq!(payloads.len(), self.shards.len(), "one payload per shard");
        if self.shards.len() == 1 {
            let payload = payloads.into_iter().next().expect("one payload");
            return vec![f(&mut self.shards[0], payload)];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(payloads)
                .map(|(shard, payload)| {
                    let f = &f;
                    scope.spawn(move || f(shard, payload))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        })
    }

    /// Drives the closed-loop scenario on every shard in parallel (see
    /// [`drive::closed_loop`]): warmup, optional per-shard chaos, then
    /// one client per (tenant, service) keeping a request in flight
    /// until `requests` are served. Returns total accepted.
    ///
    /// `chaos` is `(spec, base seed)`; each shard derives its own plan
    /// seed with [`shard_seed`], so shard 0 of a one-shard cluster is
    /// byte-identical to the unsharded chaos path.
    ///
    /// # Errors
    ///
    /// A malformed chaos spec.
    pub fn run_closed_loop(
        &mut self,
        requests: usize,
        chaos: Option<(&str, u64)>,
    ) -> Result<u64, String> {
        let plans = self.chaos_plans(chaos)?;
        let seed = self.seed;
        let accepted = self.run_parallel_with(plans, |shard, plan| {
            let mut factories = drive::factories(shard, seed);
            drive::warmup(shard, &mut factories);
            if let Some(plan) = plan {
                shard.server.install_chaos(plan);
            }
            drive::closed_loop(shard, &mut factories, requests)
        });
        Ok(accepted.iter().sum())
    }

    /// Drives the open-loop scenario: one **global** Poisson arrival
    /// schedule (seeded by the base seed, so offered arrival times are
    /// shard-count-invariant) routed to each tenant's shard, then every
    /// shard plays its sub-schedule in parallel. Returns total accepted.
    ///
    /// # Errors
    ///
    /// A malformed chaos spec.
    pub fn run_open_loop(
        &mut self,
        requests: usize,
        chaos: Option<(&str, u64)>,
    ) -> Result<u64, String> {
        let plans = self.chaos_plans(chaos)?;
        // Global (tenant, service) pairs in global order — exactly the
        // unsharded harness's pair list.
        let pairs: Vec<(usize, usize)> = (0..self.num_tenants())
            .flat_map(|g| {
                let (s, l) = self.assignment[g];
                let services = self.shards[s].server.tenants()[l].spec.services.len();
                (0..services).map(move |svc| (g, svc))
            })
            .collect();
        let schedule = drive::poisson_schedule(&pairs, requests, self.seed);
        // Route each arrival to its tenant's shard, in schedule order,
        // rewriting the global tenant id to the shard-local index.
        let mut routed: Vec<Vec<(usize, usize, u64)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for &(g, svc, at) in &schedule {
            let (s, l) = self.assignment[g];
            routed[s].push((l, svc, at));
        }
        let seed = self.seed;
        let payloads: Vec<_> = routed.into_iter().zip(plans).collect();
        let accepted = self.run_parallel_with(payloads, |shard, (schedule, plan)| {
            let mut factories = drive::factories(shard, seed);
            drive::warmup(shard, &mut factories);
            if let Some(plan) = plan {
                shard.server.install_chaos(plan);
            }
            drive::open_loop(shard, &mut factories, &schedule)
        });
        Ok(accepted.iter().sum())
    }

    /// [`Cluster::run_closed_loop`] with the observability plane
    /// attached: each shard carries an [`ne_obs::Sampler`] (created
    /// after warmup and chaos install, so it sees exactly the measured
    /// run), the per-shard timelines are namespaced with
    /// [`Timeline::rebase_shard`] and folded into one cluster timeline.
    /// The sampler only reads, so accepted counts, metrics, and every
    /// existing export are byte-identical to the unobserved run.
    ///
    /// # Errors
    ///
    /// A malformed chaos spec, or an impossible fold (cannot happen for
    /// timelines produced here — all shards share one config).
    pub fn run_closed_loop_observed(
        &mut self,
        requests: usize,
        chaos: Option<(&str, u64)>,
        obs: SamplerConfig,
    ) -> Result<(u64, Timeline), String> {
        let plans = self.chaos_plans(chaos)?;
        let seed = self.seed;
        let results = self.run_parallel_with(plans, |shard, plan| {
            let mut factories = drive::factories(shard, seed);
            drive::warmup(shard, &mut factories);
            if let Some(plan) = plan {
                shard.server.install_chaos(plan);
            }
            let mut sampler = Sampler::new(&shard.server, shard.globals.clone(), obs);
            let accepted =
                drive::closed_loop_with(shard, &mut factories, requests, &mut |s| sampler.poll(s));
            let mut timeline = sampler.finish(&shard.server);
            timeline.rebase_shard(shard.id);
            (accepted, timeline)
        });
        let accepted = results.iter().map(|(a, _)| a).sum();
        let timelines: Vec<Timeline> = results.into_iter().map(|(_, t)| t).collect();
        Ok((accepted, Timeline::fold(&timelines)?))
    }

    /// [`Cluster::run_open_loop`] with the observability plane attached
    /// (see [`Cluster::run_closed_loop_observed`]).
    ///
    /// # Errors
    ///
    /// A malformed chaos spec.
    pub fn run_open_loop_observed(
        &mut self,
        requests: usize,
        chaos: Option<(&str, u64)>,
        obs: SamplerConfig,
    ) -> Result<(u64, Timeline), String> {
        let plans = self.chaos_plans(chaos)?;
        let pairs: Vec<(usize, usize)> = (0..self.num_tenants())
            .flat_map(|g| {
                let (s, l) = self.assignment[g];
                let services = self.shards[s].server.tenants()[l].spec.services.len();
                (0..services).map(move |svc| (g, svc))
            })
            .collect();
        let schedule = drive::poisson_schedule(&pairs, requests, self.seed);
        let mut routed: Vec<Vec<(usize, usize, u64)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for &(g, svc, at) in &schedule {
            let (s, l) = self.assignment[g];
            routed[s].push((l, svc, at));
        }
        let seed = self.seed;
        let payloads: Vec<_> = routed.into_iter().zip(plans).collect();
        let results = self.run_parallel_with(payloads, |shard, (schedule, plan)| {
            let mut factories = drive::factories(shard, seed);
            drive::warmup(shard, &mut factories);
            if let Some(plan) = plan {
                shard.server.install_chaos(plan);
            }
            let mut sampler = Sampler::new(&shard.server, shard.globals.clone(), obs);
            let accepted =
                drive::open_loop_with(shard, &mut factories, &schedule, &mut |s| sampler.poll(s));
            let mut timeline = sampler.finish(&shard.server);
            timeline.rebase_shard(shard.id);
            (accepted, timeline)
        });
        let accepted = results.iter().map(|(a, _)| a).sum();
        let timelines: Vec<Timeline> = results.into_iter().map(|(_, t)| t).collect();
        Ok((accepted, Timeline::fold(&timelines)?))
    }

    /// One parsed chaos plan per shard (or `None`s without a spec).
    pub(crate) fn chaos_plans(
        &self,
        chaos: Option<(&str, u64)>,
    ) -> Result<Vec<Option<FaultPlan>>, String> {
        self.shards
            .iter()
            .map(|shard| {
                chaos
                    .map(|(spec, base)| FaultPlan::parse(spec, shard_seed(base, shard.id)))
                    .transpose()
            })
            .collect()
    }

    /// Per-shard metrics snapshots, in shard order.
    pub fn shard_metrics(&self) -> Vec<MachineMetrics> {
        self.shards
            .iter()
            .map(|s| s.server.app.machine.metrics())
            .collect()
    }

    /// The merged cluster-wide metrics report: per-shard snapshots
    /// namespaced and folded in shard order
    /// ([`MachineMetrics::merge_shards`]). The result passes the §5
    /// attribution identity checker; for one shard it is byte-identical
    /// to that shard's plain snapshot.
    ///
    /// # Errors
    ///
    /// Shards with mismatched machine configurations (never happens for
    /// a [`Cluster::build`]-built cluster).
    pub fn merged_metrics(&self) -> Result<MachineMetrics, String> {
        MachineMetrics::merge_shards(&self.shard_metrics())
    }

    /// Chaos decision counters summed across shards; `None` when no
    /// shard has a plan installed.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        let per_shard: Vec<ChaosStats> = self
            .shards
            .iter()
            .filter_map(|s| s.server.chaos_stats())
            .collect();
        if per_shard.is_empty() {
            return None;
        }
        let mut total = ChaosStats::default();
        for cs in per_shard {
            total.eenters_seen += cs.eenters_seen;
            total.aex_storms += cs.aex_storms;
            total.forced_evictions += cs.forced_evictions;
            total.tamperings += cs.tamperings;
            total.crashes += cs.crashes;
            total.stalls += cs.stalls;
            total.migrations += cs.migrations;
        }
        Some(total)
    }

    /// Macro-op replay-cache counters summed across shards (each shard
    /// owns an independent cache, like everything else machine-local);
    /// `None` when the cache is off ([`HostConfig::replay_cache`]).
    pub fn replay_stats(&self) -> Option<ReplayCacheStats> {
        let per_shard: Vec<ReplayCacheStats> = self
            .shards
            .iter()
            .filter_map(|s| s.server.replay_stats())
            .collect();
        if per_shard.is_empty() {
            return None;
        }
        let mut total = ReplayCacheStats::default();
        for rs in per_shard {
            total.hits += rs.hits;
            total.misses += rs.misses;
            total.captures += rs.captures;
            total.rejects += rs.rejects;
            total.evictions += rs.evictions;
            total.stale_flushes += rs.stale_flushes;
        }
        Some(total)
    }

    /// The end-to-end request-latency histogram folded across shards.
    pub fn request_histogram(&self) -> Histogram {
        let mut out = Histogram::new();
        for s in &self.shards {
            out.merge(&s.server.app.machine.profile().merged(ProfileEvent::Request));
        }
        out
    }

    /// The modelled clock (same on every shard).
    pub fn clock_ghz(&self) -> f64 {
        self.shards[0].server.app.machine.config().cost.clock_ghz
    }

    /// Every completion with its tenant's **global** id, shard by shard.
    pub fn completions(&self) -> Vec<(usize, &Completion)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.server
                    .completions()
                    .iter()
                    .map(move |c| (s.globals[c.tenant], c))
            })
            .collect()
    }

    /// Trace bundles captured per shard, in shard order.
    pub fn trace_bundles(&self) -> Vec<TraceBundle> {
        self.shards
            .iter()
            .map(|s| TraceBundle::capture(&s.server.app.machine))
            .collect()
    }

    /// The end-of-run summary, rows sorted by global tenant id.
    pub fn report(&self) -> ClusterReport {
        let per_shard: Vec<_> = self.shards.iter().map(|s| s.server.report()).collect();
        let tenants = self
            .assignment
            .iter()
            .enumerate()
            .map(|(g, &(s, l))| GlobalTenantReport {
                global: g,
                shard: s,
                report: per_shard[s].tenants[l].clone(),
            })
            .collect();
        let mut sched = SchedulerStats::default();
        for r in &per_shard {
            sched.dispatched += r.sched.dispatched;
            sched.home_dispatches += r.sched.home_dispatches;
            sched.steals += r.sched.steals;
            sched.invariant_violations += r.sched.invariant_violations;
            sched.max_backlog = sched.max_backlog.max(r.sched.max_backlog);
        }
        ClusterReport {
            tenants,
            sched,
            switchless: per_shard.first().is_some_and(|r| r.switchless),
            degraded_replies: per_shard.iter().map(|r| r.degraded_replies).sum(),
        }
    }

    /// The canonical per-tenant export (`ne-tenants/v1`): one line per
    /// tenant, **sorted by global tenant id**, carrying the traffic
    /// counters and a SHA-256 digest over the tenant's replies in
    /// (service, seq) order. Shard placement is deliberately excluded:
    /// under the clean closed-loop scenario these bytes are identical at
    /// every shard count, which is exactly what the
    /// shard-count-invariance oracle (and CI's `shard-smoke` byte-diff)
    /// checks.
    pub fn tenants_export(&self) -> String {
        let mut out = String::from("schema: ne-tenants/v1\n");
        for (g, &(s, l)) in self.assignment.iter().enumerate() {
            let server = &self.shards[s].server;
            let t = &server.tenants()[l];
            // Replies in (service, seq) order, independent of completion
            // interleaving across cores.
            let mut replies: Vec<&Completion> = server
                .completions()
                .iter()
                .filter(|c| c.tenant == l)
                .collect();
            replies.sort_by_key(|c| (c.service, c.seq));
            let mut bytes = Vec::new();
            for c in &replies {
                bytes.extend_from_slice(&(c.service as u32).to_le_bytes());
                bytes.extend_from_slice(&c.seq.to_le_bytes());
                bytes.extend_from_slice(&(c.reply.len() as u32).to_le_bytes());
                bytes.extend_from_slice(&c.reply);
            }
            let digest = ne_crypto::sha256_digest(&bytes);
            let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
            out.push_str(&format!(
                "tenant {g} name {} accepted {} rejected_full {} rejected_shed {} \
                 completed {} shed {} replies sha256:{hex}\n",
                t.spec.name,
                t.accepted,
                t.rejected_full,
                t.rejected_shed,
                t.completed,
                t.shed_requests,
            ));
        }
        out
    }
}
