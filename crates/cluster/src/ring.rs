//! Tenant → shard placement: a small consistent-hash ring.
//!
//! Placement must be a pure function of the tenant's *name* and the
//! shard count — never of list position — so that adding a tenant moves
//! only ~`1/N` of the keys (the consistent-hashing property) and so the
//! mapping can be documented and recomputed by hand. Each shard owns
//! `vnodes` points on a `u64` ring; a tenant hashes to a point and is
//! owned by the first shard point at or after it (wrapping).

/// SplitMix64 finalizer: cheap, seedable, excellent diffusion. The same
/// mix `ne-sgx`'s chaos RNG uses; duplicated here (it is three lines) to
/// keep the placement function self-contained and documentable.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-shard seed stream: shard 0 inherits the base seed
/// **unchanged** — that convention is what makes a one-shard cluster
/// bit-compatible with the unsharded path — and every higher shard gets
/// an independent SplitMix64-derived stream. Only shard-local machinery
/// (e.g. per-shard chaos plans) draws from this; tenant-visible state is
/// seeded by `(base seed, global tenant id)` instead, so it cannot
/// depend on shard layout.
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        seed
    } else {
        splitmix64(seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// FNV-1a over the key bytes, finished with [`splitmix64`] to spread the
/// low-entropy tails FNV leaves on short ASCII names.
fn key_point(key: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

/// A consistent-hash ring over `shards` shards.
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// `(point, shard)` sorted by point; ties broken by shard index so
    /// construction is deterministic regardless of sort stability.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl ShardRing {
    /// Default virtual nodes per shard — enough to keep the expected
    /// imbalance for tens of tenants within a factor of ~2.
    pub const DEFAULT_VNODES: usize = 16;

    /// A ring with `vnodes` points per shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize) -> ShardRing {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one point per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                // Mix shard and vnode ids far apart so consecutive ids do
                // not land on consecutive points.
                let point = splitmix64(((shard as u64) << 32) | v as u64);
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        ShardRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or after the
    /// key's hash, wrapping past the top of the `u64` range.
    pub fn shard_of(&self, key: &str) -> usize {
        let h = key_point(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let ring = ShardRing::new(1, 4);
        for name in ["tenant0", "tenant1", "a", ""] {
            assert_eq!(ring.shard_of(name), 0);
        }
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let a = ShardRing::new(4, 16);
        let b = ShardRing::new(4, 16);
        for i in 0..100 {
            let name = format!("tenant{i}");
            let s = a.shard_of(&name);
            assert_eq!(s, b.shard_of(&name));
            assert!(s < 4);
        }
    }

    #[test]
    fn every_shard_gets_tenants_eventually() {
        let ring = ShardRing::new(4, 16);
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[ring.shard_of(&format!("tenant{i}"))] = true;
        }
        assert!(seen.iter().all(|&s| s), "empty shard across 64 tenants");
    }

    #[test]
    fn growing_the_ring_moves_few_keys() {
        // The consistent-hashing property: going from N to N+1 shards
        // moves roughly 1/(N+1) of the keys, not all of them.
        let before = ShardRing::new(4, 16);
        let after = ShardRing::new(5, 16);
        let total = 200;
        let moved = (0..total)
            .filter(|i| {
                let name = format!("tenant{i}");
                before.shard_of(&name) != after.shard_of(&name)
            })
            .count();
        assert!(
            moved < total / 2,
            "{moved}/{total} keys moved on a 4→5 resize"
        );
    }

    #[test]
    fn shard_seed_convention() {
        assert_eq!(shard_seed(7, 0), 7, "shard 0 inherits the base seed");
        let s1 = shard_seed(7, 1);
        let s2 = shard_seed(7, 2);
        assert_ne!(s1, 7);
        assert_ne!(s1, s2);
        assert_eq!(s1, shard_seed(7, 1), "streams are deterministic");
    }
}
