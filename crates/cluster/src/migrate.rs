//! Live cross-shard tenant migration: the cluster-level half of the
//! sealed-state lifecycle.
//!
//! A migration moves one tenant's sealed session state from its source
//! shard's machine to a destination shard's machine mid-run:
//!
//! 1. the source server runs the five-phase extract (quiesce → seal →
//!    EREMOVE), producing a [`ne_host::TenantSnapshot`] whose blobs are
//!    bound to the enclave's *measurement* — MRENCLAVE is load-position
//!    independent, so the rebuilt enclave on any machine derives the
//!    same `EGETKEY` seal key;
//! 2. the cluster advances the tenant's **seal-counter floor** (the
//!    coordinator-owned freshness authority — a replayed old snapshot
//!    is internally consistent, so only the floor can refuse it);
//! 3. the destination server adopts (rebuild → NASSO re-association →
//!    NEREPORT attestation → unseal-with-floor → resume). A failed
//!    adoption rolls the snapshot back onto the source shard — the
//!    tenant keeps serving either way, and no accepted request is ever
//!    dropped (parked requests travel inside the snapshot).
//!
//! Migrations only happen at **segment barriers** — points where every
//! shard has drained — driven by [`Cluster::run_segmented_closed_loop`]
//! / [`Cluster::run_segmented_closed_loop_observed`]. Three triggers
//! compose at a barrier, in deterministic order: planned moves from the
//! [`MigrationPolicy`], EPC-pressure evacuation, then chaos-injected
//! requests (`migrate[:period]` in the fault grammar) drained from each
//! machine via [`ne_sgx::machine::Machine::take_migration_requests`].

use crate::cluster::Cluster;
use crate::drive;
use ne_host::{HostError, HostResult, RequestFactory};
use ne_obs::{Sampler, SamplerConfig, TenantCarry, Timeline};

/// One planned cross-shard move for a segmented run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedMove {
    /// Fires at the barrier after this segment index (0-based). The
    /// final segment has no barrier, so moves planned there never fire.
    pub segment: usize,
    /// Global tenant id to move.
    pub global: usize,
    /// Destination shard.
    pub to_shard: usize,
}

/// Migration controls for the segmented drivers. The default policy
/// performs no planned moves, no EPC evacuation, and still honors
/// chaos-injected migration requests (they only exist if the fault
/// plan's grammar asked for `migrate`).
#[derive(Debug, Clone, Default)]
pub struct MigrationPolicy {
    /// Planned moves, executed in declaration order at their barriers.
    pub moves: Vec<PlannedMove>,
    /// When set, a shard whose free EPC is below this many pages at a
    /// barrier evacuates its largest loaded tenant to the freest other
    /// shard.
    pub epc_low_water: Option<usize>,
}

/// What triggered a migration attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationTrigger {
    /// A [`PlannedMove`] in the policy.
    Planned,
    /// The EPC low-water evacuation policy.
    EpcPressure,
    /// A chaos-injected migration request.
    Chaos,
}

impl MigrationTrigger {
    /// Stable lowercase name (for logs and exports).
    pub fn name(self) -> &'static str {
        match self {
            MigrationTrigger::Planned => "planned",
            MigrationTrigger::EpcPressure => "epc-pressure",
            MigrationTrigger::Chaos => "chaos",
        }
    }
}

/// Outcome of one migration attempt. Both arms leave the tenant
/// serving somewhere — a migration never loses a tenant.
#[derive(Debug)]
pub enum MigrationOutcome {
    /// The tenant now serves from the destination shard.
    Adopted {
        /// Destination shard.
        to: usize,
        /// The tenant's new local slot there.
        local: usize,
    },
    /// Adoption failed; the snapshot was rolled back onto the source
    /// shard and the tenant serves from there.
    RolledBack {
        /// Why the destination refused.
        error: HostError,
        /// The tenant's new local slot back on the source shard.
        local: usize,
    },
}

/// One barrier migration, as recorded by the segmented drivers.
#[derive(Debug)]
pub struct MigrationRecord {
    /// Barrier index (after this segment).
    pub segment: usize,
    /// Global tenant id.
    pub global: usize,
    /// Source shard.
    pub from: usize,
    /// What asked for the move.
    pub trigger: MigrationTrigger,
    /// How it ended.
    pub outcome: MigrationOutcome,
}

/// Per-shard driver state the coordinator carries across segments.
type ShardState = (Vec<Vec<RequestFactory>>, Option<Sampler>);

impl Cluster {
    /// Migrates global tenant `global` from `from_shard` to `to_shard`
    /// on an otherwise idle cluster (no driver running, no samplers
    /// attached — the segmented drivers handle their own bookkeeping).
    /// On a refused adoption the tenant is rolled back onto
    /// `from_shard` and the refusal is reported in the outcome.
    ///
    /// # Errors
    ///
    /// [`HostError::BadRequest`] for an invalid placement or shard pair;
    /// extraction failures (e.g. an open circuit breaker); a rollback
    /// that itself fails (the only path that can lose a tenant, and it
    /// propagates rather than being swallowed).
    pub fn migrate_tenant(
        &mut self,
        global: usize,
        from_shard: usize,
        to_shard: usize,
    ) -> HostResult<MigrationOutcome> {
        if global >= self.assignment.len() {
            return Err(HostError::BadRequest(format!("no tenant {global}")));
        }
        if to_shard >= self.shards.len() {
            return Err(HostError::BadRequest(format!("no shard {to_shard}")));
        }
        let (placed, _) = self.assignment[global];
        if placed != from_shard {
            return Err(HostError::BadRequest(format!(
                "tenant {global} is on shard {placed}, not {from_shard}"
            )));
        }
        if from_shard == to_shard {
            return Err(HostError::BadRequest(format!(
                "tenant {global} is already on shard {to_shard}"
            )));
        }
        let (_, outcome) = self.do_migrate(global, to_shard)?;
        Ok(outcome)
    }

    /// The extract → floor → adopt-or-rollback core. Returns the old
    /// local slot on the source shard alongside the outcome so driver
    /// wrappers can move their per-slot state.
    fn do_migrate(&mut self, global: usize, to: usize) -> HostResult<(usize, MigrationOutcome)> {
        let (from, local) = self.assignment[global];
        let snap = self.shards[from].server.extract_tenant(local)?;
        self.seal_floors[global] = snap.seal_counter;
        let floor = self.seal_floors[global];
        match self.shards[to].server.adopt_tenant(&snap, floor) {
            Ok(new_local) => {
                self.shards[to].globals.push(global);
                self.assignment[global] = (to, new_local);
                Ok((
                    local,
                    MigrationOutcome::Adopted {
                        to,
                        local: new_local,
                    },
                ))
            }
            Err(error) => {
                let new_local = self.shards[from].server.rollback_tenant(&snap, floor)?;
                self.shards[from].globals.push(global);
                self.assignment[global] = (from, new_local);
                Ok((
                    local,
                    MigrationOutcome::RolledBack {
                        error,
                        local: new_local,
                    },
                ))
            }
        }
    }

    /// [`Cluster::do_migrate`] plus the per-shard driver bookkeeping:
    /// retires the tenant on the source sampler, adopts it on whichever
    /// shard it landed on, and moves its request-factory row so the
    /// next segment keeps its payload stream position.
    fn migrate_for_driver(
        &mut self,
        global: usize,
        to: usize,
        state: &mut [ShardState],
    ) -> HostResult<MigrationOutcome> {
        let (from, _) = self.assignment[global];
        let (old_local, outcome) = self.do_migrate(global, to)?;
        let landed = match &outcome {
            MigrationOutcome::Adopted { to, .. } => *to,
            MigrationOutcome::RolledBack { .. } => from,
        };
        let carry: Option<TenantCarry> = state[from]
            .1
            .as_mut()
            .map(|sampler| sampler.retire_tenant(global));
        if let (Some(sampler), Some(carry)) = (state[landed].1.as_mut(), carry) {
            sampler.adopt_tenant(&self.shards[landed].server, global, carry);
        }
        let row = std::mem::take(&mut state[from].0[old_local]);
        state[landed].0.push(row);
        debug_assert_eq!(
            state[landed].0.len(),
            self.shards[landed].server.tenants().len(),
            "factory rows must track tenant slots"
        );
        Ok(outcome)
    }

    /// The freest other shard (most free EPC pages; ties go to the
    /// lowest shard id). `None` on a one-shard cluster.
    fn freest_shard_excluding(&self, source: usize) -> Option<usize> {
        self.shards
            .iter()
            .filter(|s| s.id != source)
            .max_by(|a, b| {
                let fa = a.server.app.machine.free_epc_pages();
                let fb = b.server.app.machine.free_epc_pages();
                fa.cmp(&fb).then(b.id.cmp(&a.id))
            })
            .map(|s| s.id)
    }

    /// True if the tenant can be extracted right now (loaded, breaker
    /// closed) — pre-filtering keeps barrier migration total and turns
    /// "cannot move" into "did not move" instead of a driver error.
    fn migratable(&self, global: usize) -> bool {
        let (s, l) = self.assignment[global];
        let server = &self.shards[s].server;
        server.tenants()[l].loaded && !server.recovery_states()[l].breaker_open
    }

    /// Collects this barrier's moves in deterministic order: planned
    /// moves first, then EPC-pressure evacuations (shard order), then
    /// chaos-injected requests (shard order, request order). Each
    /// tenant moves at most once per barrier; machine-side migration
    /// requests are drained here even when they end up skipped.
    fn barrier_moves(
        &mut self,
        segment: usize,
        policy: &MigrationPolicy,
    ) -> Vec<(usize, usize, MigrationTrigger)> {
        let mut moves: Vec<(usize, usize, MigrationTrigger)> = Vec::new();
        let mut moving = vec![false; self.assignment.len()];
        for m in &policy.moves {
            if m.segment != segment
                || m.global >= self.assignment.len()
                || m.to_shard >= self.shards.len()
                || m.to_shard == self.assignment[m.global].0
                || moving[m.global]
                || !self.migratable(m.global)
            {
                continue;
            }
            moving[m.global] = true;
            moves.push((m.global, m.to_shard, MigrationTrigger::Planned));
        }
        if let Some(low) = policy.epc_low_water {
            for s in 0..self.shards.len() {
                if self.shards[s].server.app.machine.free_epc_pages() >= low {
                    continue;
                }
                // The biggest movable tenant on the shard; ties go to
                // the lowest global id.
                let victim = (0..self.assignment.len())
                    .filter(|&g| self.assignment[g].0 == s && !moving[g] && self.migratable(g))
                    .max_by_key(|&g| {
                        let (_, l) = self.assignment[g];
                        (
                            self.shards[s].server.tenant_epc_pages(l),
                            std::cmp::Reverse(g),
                        )
                    });
                let (Some(g), Some(dest)) = (victim, self.freest_shard_excluding(s)) else {
                    continue;
                };
                moving[g] = true;
                moves.push((g, dest, MigrationTrigger::EpcPressure));
            }
        }
        for s in 0..self.shards.len() {
            let requests = self.shards[s].server.app.machine.take_migration_requests();
            for eid in requests {
                let Some(l) = self.shards[s].server.eid_owner(eid) else {
                    continue;
                };
                let g = self.shards[s].globals[l];
                if self.assignment[g] != (s, l) || moving[g] || !self.migratable(g) {
                    continue;
                }
                let Some(dest) = self.freest_shard_excluding(s) else {
                    continue;
                };
                moving[g] = true;
                moves.push((g, dest, MigrationTrigger::Chaos));
            }
        }
        moves
    }

    /// Shared body of the segmented drivers. `obs` attaches one
    /// sampler per shard and folds the timelines at the end.
    fn run_segmented(
        &mut self,
        segments: &[usize],
        chaos: Option<(&str, u64)>,
        policy: &MigrationPolicy,
        obs: Option<SamplerConfig>,
    ) -> Result<(u64, Option<Timeline>, Vec<MigrationRecord>), String> {
        let plans = self.chaos_plans(chaos)?;
        let seed = self.seed;
        let mut state: Vec<ShardState> = self.run_parallel_with(plans, |shard, plan| {
            let mut factories = drive::factories(shard, seed);
            drive::warmup(shard, &mut factories);
            if let Some(plan) = plan {
                shard.server.install_chaos(plan);
            }
            let sampler = obs.map(|cfg| Sampler::new(&shard.server, shard.globals.clone(), cfg));
            (factories, sampler)
        });
        let mut accepted = 0u64;
        let mut log: Vec<MigrationRecord> = Vec::new();
        for (i, &requests) in segments.iter().enumerate() {
            let results = self.run_parallel_with(state, |shard, (mut factories, mut sampler)| {
                let n = match &mut sampler {
                    Some(sampler) => {
                        drive::closed_loop_with(shard, &mut factories, requests, &mut |s| {
                            sampler.poll(s)
                        })
                    }
                    None => drive::closed_loop(shard, &mut factories, requests),
                };
                (n, (factories, sampler))
            });
            state = Vec::with_capacity(results.len());
            for (n, shard_state) in results {
                accepted += n;
                state.push(shard_state);
            }
            if i + 1 == segments.len() {
                break;
            }
            for (global, to, trigger) in self.barrier_moves(i, policy) {
                let from = self.assignment[global].0;
                let outcome = self
                    .migrate_for_driver(global, to, &mut state)
                    .map_err(|e| format!("migrating tenant {global} to shard {to}: {e}"))?;
                log.push(MigrationRecord {
                    segment: i,
                    global,
                    from,
                    trigger,
                    outcome,
                });
            }
        }
        let timeline = if obs.is_some() {
            let samplers: Vec<Sampler> = state
                .into_iter()
                .map(|(_, sampler)| sampler.expect("observed run has a sampler per shard"))
                .collect();
            let timelines = self.run_parallel_with(samplers, |shard, sampler| {
                let mut t = sampler.finish(&shard.server);
                t.rebase_shard(shard.id);
                t
            });
            Some(Timeline::fold(&timelines)?)
        } else {
            None
        };
        Ok((accepted, timeline, log))
    }

    /// Drives the closed-loop scenario in segments with migration
    /// barriers between them: each segment serves `segments[i]`
    /// requests per (tenant, service) pair on every shard in parallel,
    /// then — with all shards drained — the barrier executes this
    /// round's migrations (planned, EPC-pressure, chaos-injected).
    /// Returns total accepted and the migration log.
    ///
    /// Running `[a, b]` with no migrations produces exactly the same
    /// per-tenant reply bytes as running `[a + b]` — reply streams
    /// depend only on the factory streams and sealed state, never on
    /// barrier timing — which is what makes the migration differential
    /// oracle byte-exact.
    ///
    /// # Errors
    ///
    /// A malformed chaos spec, or a migration whose rollback failed.
    pub fn run_segmented_closed_loop(
        &mut self,
        segments: &[usize],
        chaos: Option<(&str, u64)>,
        policy: &MigrationPolicy,
    ) -> Result<(u64, Vec<MigrationRecord>), String> {
        let (accepted, _, log) = self.run_segmented(segments, chaos, policy, None)?;
        Ok((accepted, log))
    }

    /// [`Cluster::run_segmented_closed_loop`] with the observability
    /// plane attached: per-shard samplers ride every segment, migrating
    /// tenants hand their window cursor to the destination sampler
    /// ([`ne_obs::Sampler::retire_tenant`] /
    /// [`ne_obs::Sampler::adopt_tenant`]), and the folded timeline
    /// carries exactly one totals line per global tenant.
    ///
    /// # Errors
    ///
    /// A malformed chaos spec, a migration whose rollback failed, or an
    /// impossible fold.
    pub fn run_segmented_closed_loop_observed(
        &mut self,
        segments: &[usize],
        chaos: Option<(&str, u64)>,
        policy: &MigrationPolicy,
        obs: SamplerConfig,
    ) -> Result<(u64, Timeline, Vec<MigrationRecord>), String> {
        let (accepted, timeline, log) = self.run_segmented(segments, chaos, policy, Some(obs))?;
        Ok((
            accepted,
            timeline.expect("observed run folds a timeline"),
            log,
        ))
    }
}
