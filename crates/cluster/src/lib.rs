#![deny(missing_docs)]

//! **ne-cluster** — sharded parallel simulation of the multi-tenant
//! hosting server.
//!
//! The paper's nested-enclave model isolates tenants from each other by
//! construction: a tenant's gate and service enclaves never share state
//! with a sibling's. That makes tenant groups *embarrassingly parallel* —
//! independent tenants can be simulated on independent
//! [`ne_sgx::machine::Machine`]s with no shared state at all. This crate
//! is that shard layer:
//!
//! 1. [`ShardRing`] consistent-hashes each tenant (by name) onto one of
//!    N shards;
//! 2. [`Cluster::build`] constructs one full [`ne_host::HostServer`] per
//!    shard, with every tenant's seeding identity pinned to its
//!    **global** id ([`ne_host::TenantSpec::seed_index`]) so its models,
//!    datasets, and request streams do not depend on shard layout;
//! 3. [`Cluster::run_parallel`] drives one shard per OS thread
//!    (`std::thread::scope` — the servers are `Send`, enforced at
//!    compile time in `ne-host`);
//! 4. [`Cluster::merged_metrics`] folds the per-shard
//!    [`ne_sgx::metrics::MachineMetrics`] snapshots into one report that
//!    still passes the §5 attribution identity checker, by namespacing
//!    ids per shard and summing component-wise
//!    ([`ne_sgx::metrics::MachineMetrics::merge_shards`]).
//!
//! # Determinism and the shard-count-invariance oracle
//!
//! Everything tenant-visible is seeded by `(base seed, global tenant
//! id)`; only shard-local machinery (chaos plans) draws from the
//! per-shard stream [`shard_seed`]`(seed, shard_id)`. Arrival schedules
//! for the open loop are generated **globally** and then routed
//! ([`poisson_schedule`]), so a tenant sees the same offered arrival
//! times at any shard count. The result: under the clean closed-loop
//! scenario, per-tenant outputs ([`Cluster::tenants_export`]) are
//! **byte-identical at every shard count** — that is the
//! shard-count-invariance oracle checked by this crate's tests and CI's
//! `shard-smoke` job. A single-shard cluster is bit-compatible with the
//! unsharded [`ne_host::HostServer`] path end to end (same exports, same
//! bytes), which is the regression test that keeps the pre-shard
//! baselines valid.

pub mod cluster;
pub mod drive;
pub mod migrate;
pub mod ring;

pub use cluster::{Cluster, ClusterConfig, ClusterReport, GlobalTenantReport, Shard};
pub use drive::{
    poisson_schedule, setup_counts, standard_specs, FactorySource, Pulled, RequestSource,
    MEAN_GAP_CYCLES, OPEN_LOOP_SALT,
};
pub use migrate::{
    MigrationOutcome, MigrationPolicy, MigrationRecord, MigrationTrigger, PlannedMove,
};
pub use ring::{shard_seed, splitmix64, ShardRing};
