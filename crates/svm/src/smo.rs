//! C-SVC training by Sequential Minimal Optimization (Platt's SMO, the
//! algorithm inside LibSVM), with one-vs-one multi-class reduction.

use crate::data::Dataset;
use crate::kernel::Kernel;
use crate::model::{BinaryModel, SvmModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainParams {
    /// Soft-margin penalty.
    pub c: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// KKT tolerance.
    pub tol: f64,
    /// Cap on full optimization passes (keeps worst-case bounded).
    pub max_passes: usize,
    /// RNG seed for the second-multiplier heuristic.
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            c: 1.0,
            kernel: Kernel::Linear,
            tol: 1e-3,
            max_passes: 20,
            seed: 1,
        }
    }
}

/// Trains a (possibly multi-class) SVM on `ds` with one-vs-one reduction,
/// exactly like LibSVM's C-SVC.
///
/// # Panics
///
/// Panics if the dataset is empty or has fewer than two classes.
pub fn train(ds: &Dataset, params: &TrainParams) -> SvmModel {
    assert!(!ds.is_empty(), "cannot train on an empty dataset");
    assert!(ds.num_classes >= 2, "need at least two classes");
    let mut binaries = Vec::new();
    for a in 0..ds.num_classes {
        for b in (a + 1)..ds.num_classes {
            let (samples, labels): (Vec<Vec<f64>>, Vec<f64>) = ds
                .samples
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| l == a || l == b)
                .map(|(x, &l)| (x.clone(), if l == a { 1.0 } else { -1.0 }))
                .unzip();
            let bin = train_binary(&samples, &labels, params);
            binaries.push(((a, b), bin));
        }
    }
    SvmModel::new(ds.num_classes, params.kernel, binaries)
}

/// Trains one binary classifier with simplified SMO.
fn train_binary(samples: &[Vec<f64>], labels: &[f64], params: &TrainParams) -> BinaryModel {
    let n = samples.len();
    let mut alpha = vec![0.0f64; n];
    let mut b = 0.0f64;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let decision = |alpha: &[f64], b: f64, x: &[f64]| -> f64 {
        let mut s = b;
        for i in 0..n {
            if alpha[i] > 0.0 {
                s += alpha[i] * labels[i] * params.kernel.eval(&samples[i], x);
            }
        }
        s
    };
    let mut passes = 0usize;
    while passes < params.max_passes {
        let mut changed = 0usize;
        for i in 0..n {
            let ei = decision(&alpha, b, &samples[i]) - labels[i];
            let violates = (labels[i] * ei < -params.tol && alpha[i] < params.c)
                || (labels[i] * ei > params.tol && alpha[i] > 0.0);
            if !violates {
                continue;
            }
            // Second multiplier: random distinct index (Platt's fallback
            // heuristic; adequate at these problem sizes).
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let ej = decision(&alpha, b, &samples[j]) - labels[j];
            let (ai_old, aj_old) = (alpha[i], alpha[j]);
            let (lo, hi) = if (labels[i] - labels[j]).abs() > f64::EPSILON {
                (
                    (alpha[j] - alpha[i]).max(0.0),
                    (params.c + alpha[j] - alpha[i]).min(params.c),
                )
            } else {
                (
                    (alpha[i] + alpha[j] - params.c).max(0.0),
                    (alpha[i] + alpha[j]).min(params.c),
                )
            };
            if hi - lo < 1e-12 {
                continue;
            }
            let kii = params.kernel.eval(&samples[i], &samples[i]);
            let kjj = params.kernel.eval(&samples[j], &samples[j]);
            let kij = params.kernel.eval(&samples[i], &samples[j]);
            let eta = 2.0 * kij - kii - kjj;
            if eta >= 0.0 {
                continue;
            }
            let mut aj = aj_old - labels[j] * (ei - ej) / eta;
            aj = aj.clamp(lo, hi);
            if (aj - aj_old).abs() < 1e-7 {
                continue;
            }
            let ai = ai_old + labels[i] * labels[j] * (aj_old - aj);
            alpha[i] = ai;
            alpha[j] = aj;
            let b1 = b - ei - labels[i] * (ai - ai_old) * kii - labels[j] * (aj - aj_old) * kij;
            let b2 = b - ej - labels[i] * (ai - ai_old) * kij - labels[j] * (aj - aj_old) * kjj;
            b = if ai > 0.0 && ai < params.c {
                b1
            } else if aj > 0.0 && aj < params.c {
                b2
            } else {
                (b1 + b2) / 2.0
            };
            changed += 1;
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }
    // Keep only support vectors.
    let mut support = Vec::new();
    let mut coeffs = Vec::new();
    for i in 0..n {
        if alpha[i] > 1e-9 {
            support.push(samples[i].clone());
            coeffs.push(alpha[i] * labels[i]);
        }
    }
    BinaryModel {
        support,
        coeffs,
        bias: b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_separable_binary() {
        let ds = Dataset::synthetic(2, 60, 4, 3);
        let model = train(&ds, &TrainParams::default());
        assert!(model.accuracy(&ds) > 0.95, "got {}", model.accuracy(&ds));
    }

    #[test]
    fn trains_three_classes_one_vs_one() {
        let ds = Dataset::synthetic(3, 40, 12, 5);
        let model = train(&ds, &TrainParams::default());
        assert_eq!(model.num_binaries(), 3, "C(3,2) pairwise classifiers");
        assert!(model.accuracy(&ds) > 0.9, "got {}", model.accuracy(&ds));
    }

    #[test]
    fn rbf_kernel_trains() {
        let ds = Dataset::synthetic(2, 40, 4, 8);
        let model = train(
            &ds,
            &TrainParams {
                kernel: Kernel::Rbf { gamma: 0.25 },
                ..Default::default()
            },
        );
        assert!(model.accuracy(&ds) > 0.9, "got {}", model.accuracy(&ds));
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let train_ds = Dataset::synthetic(2, 80, 4, 11);
        let test_ds = Dataset::synthetic(2, 20, 4, 999);
        let model = train(&train_ds, &TrainParams::default());
        assert!(
            model.accuracy(&test_ds) > 0.9,
            "got {}",
            model.accuracy(&test_ds)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = Dataset::synthetic(2, 30, 3, 2);
        let m1 = train(&ds, &TrainParams::default());
        let m2 = train(&ds, &TrainParams::default());
        assert_eq!(m1.predict(&ds.samples[0]), m2.predict(&ds.samples[0]));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let ds = Dataset::new(vec![], vec![], 2);
        train(&ds, &TrainParams::default());
    }
}
