//! SVM kernels.

/// Kernel functions supported by the trainer, matching the LibSVM defaults
/// the paper's case study uses.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum Kernel {
    /// `K(x, y) = x · y`
    #[default]
    Linear,
    /// `K(x, y) = exp(-gamma * ||x - y||²)`
    Rbf {
        /// Kernel width.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel on two samples.
    ///
    /// # Panics
    ///
    /// Panics if the samples have different dimensionality.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dimension mismatch");
        match self {
            Kernel::Linear => dot(x, y),
            Kernel::Rbf { gamma } => {
                let d2: f64 = x.iter().zip(y.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// Dense dot product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_identity_is_one() {
        let k = Kernel::Rbf { gamma: 0.5 };
        let x = [1.0, -2.0, 3.0];
        assert!((k.eval(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Kernel::Rbf { gamma: 1.0 };
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[2.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        Kernel::Linear.eval(&[1.0], &[1.0, 2.0]);
    }
}
