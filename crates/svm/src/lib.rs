#![warn(missing_docs)]

//! # ne-svm — a LibSVM-style support-vector-machine library
//!
//! Substrate for the paper's § VI-B case study ("machine learning as a
//! service" on LibSVM). Provides:
//!
//! * an SMO-based C-SVC trainer ([`smo`]) with linear and RBF kernels
//!   ([`kernel`]), one-vs-one multi-class like LibSVM,
//! * prediction ([`model`]),
//! * synthetic datasets shaped like the paper's Table V ([`data`]),
//! * the privacy filter the inner enclave applies before handing samples
//!   to the shared outer-enclave library ([`filter`]).
//!
//! # Example
//!
//! ```
//! use ne_svm::data::Dataset;
//! use ne_svm::kernel::Kernel;
//! use ne_svm::smo::{train, TrainParams};
//!
//! let ds = Dataset::synthetic(2, 80, 4, 42);
//! let model = train(&ds, &TrainParams { c: 1.0, kernel: Kernel::Linear, ..Default::default() });
//! let acc = model.accuracy(&ds);
//! assert!(acc > 0.9, "separable synthetic data should train well, got {acc}");
//! ```

pub mod data;
pub mod filter;
pub mod kernel;
pub mod model;
pub mod smo;

pub use data::Dataset;
pub use kernel::Kernel;
pub use model::SvmModel;
pub use smo::{train, TrainParams};
