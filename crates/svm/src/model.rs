//! Trained SVM models and prediction.

use crate::data::Dataset;
use crate::kernel::Kernel;

/// One binary decision function (support vectors + dual coefficients).
#[derive(Debug, Clone)]
pub struct BinaryModel {
    /// Support vectors.
    pub support: Vec<Vec<f64>>,
    /// `alpha_i * y_i` for each support vector.
    pub coeffs: Vec<f64>,
    /// Bias term.
    pub bias: f64,
}

impl BinaryModel {
    /// Signed decision value for `x`.
    pub fn decide(&self, kernel: &Kernel, x: &[f64]) -> f64 {
        let mut s = self.bias;
        for (sv, c) in self.support.iter().zip(&self.coeffs) {
            s += c * kernel.eval(sv, x);
        }
        s
    }
}

/// A trained (multi-class) SVM: one-vs-one binary models with majority
/// voting, as in LibSVM.
#[derive(Debug, Clone)]
pub struct SvmModel {
    num_classes: usize,
    kernel: Kernel,
    binaries: Vec<((usize, usize), BinaryModel)>,
}

impl SvmModel {
    /// Assembles a model from pairwise classifiers.
    pub fn new(
        num_classes: usize,
        kernel: Kernel,
        binaries: Vec<((usize, usize), BinaryModel)>,
    ) -> SvmModel {
        SvmModel {
            num_classes,
            kernel,
            binaries,
        }
    }

    /// Number of pairwise classifiers.
    pub fn num_binaries(&self) -> usize {
        self.binaries.len()
    }

    /// Total number of support vectors across classifiers.
    pub fn num_support_vectors(&self) -> usize {
        self.binaries.iter().map(|(_, b)| b.support.len()).sum()
    }

    /// Predicts the class of `x` by one-vs-one voting.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut votes = vec![0usize; self.num_classes];
        for ((a, b), bin) in &self.binaries {
            if bin.decide(&self.kernel, x) >= 0.0 {
                votes[*a] += 1;
            } else {
                votes[*b] += 1;
            }
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Fraction of `ds` classified correctly.
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 0.0;
        }
        let correct = ds
            .samples
            .iter()
            .zip(&ds.labels)
            .filter(|(x, &l)| self.predict(x) == l)
            .count();
        correct as f64 / ds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_model() -> SvmModel {
        // One support vector at +1 with weight 1: decide(x) = x[0].
        let bin = BinaryModel {
            support: vec![vec![1.0]],
            coeffs: vec![1.0],
            bias: 0.0,
        };
        SvmModel::new(2, Kernel::Linear, vec![((0, 1), bin)])
    }

    #[test]
    fn predict_by_sign() {
        let m = trivial_model();
        assert_eq!(m.predict(&[2.0]), 0);
        assert_eq!(m.predict(&[-2.0]), 1);
    }

    #[test]
    fn accuracy_counts_matches() {
        let m = trivial_model();
        let ds = Dataset::new(vec![vec![1.0], vec![-1.0], vec![3.0]], vec![0, 1, 1], 2);
        assert!((m.accuracy(&ds) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_accuracy_zero() {
        let m = trivial_model();
        assert_eq!(m.accuracy(&Dataset::new(vec![], vec![], 2)), 0.0);
    }

    #[test]
    fn support_vector_count() {
        assert_eq!(trivial_model().num_support_vectors(), 1);
    }
}
