//! Datasets, including synthetic stand-ins for the paper's Table V.
//!
//! The UCI/LIBSVM datasets the paper uses (cod-rna, colon-cancer, dna,
//! phishing, protein) cannot be redistributed here, so
//! [`TableVDataset::generate`] produces synthetic data of the *same shape*
//! (classes, train/test sizes, feature counts): Gaussian clusters with
//! per-class means, linearly separable enough that training behaves like
//! the real workloads at the same computational scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labeled dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Sample feature vectors, all the same length.
    pub samples: Vec<Vec<f64>>,
    /// Class labels, `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shape.
    ///
    /// # Panics
    ///
    /// Panics if samples/labels disagree or a label is out of range.
    pub fn new(samples: Vec<Vec<f64>>, labels: Vec<usize>, num_classes: usize) -> Dataset {
        assert_eq!(samples.len(), labels.len(), "samples/labels mismatch");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            samples,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }

    /// Generates `per_class` samples for each of `num_classes` Gaussian
    /// clusters in `dim` dimensions, deterministically from `seed`.
    pub fn synthetic(num_classes: usize, per_class: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(num_classes * per_class);
        let mut labels = Vec::with_capacity(num_classes * per_class);
        // Each class gets a pseudo-random ±2 sign pattern across *all*
        // dimensions, so any class pair is separable in roughly half the
        // features (and remains separable when a privacy filter drops a
        // few columns).
        for class in 0..num_classes {
            for _ in 0..per_class {
                let mut x = Vec::with_capacity(dim);
                for d in 0..dim {
                    let h = (class as u64)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add((d as u64).wrapping_mul(0x85EB_CA6B));
                    let h = (h ^ (h >> 13)).wrapping_mul(0xC2B2_AE35);
                    let mean = if (h >> 7) & 1 == 1 { 2.0 } else { -2.0 };
                    // Box–Muller normal from two uniforms.
                    let u1: f64 = rng.gen_range(1e-9..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    x.push(mean + 0.8 * n);
                }
                samples.push(x);
                labels.push(class);
            }
        }
        Dataset::new(samples, labels, num_classes)
    }

    /// Takes the first `n` samples (used to carve test sets and scale
    /// benchmark sizes).
    pub fn truncate(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            samples: self.samples[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
            num_classes: self.num_classes,
        }
    }

    /// Serializes samples to a flat little-endian byte buffer (for feeding
    /// through enclave memory in the case studies).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len() * (self.dim() * 8 + 8));
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.dim() as u32).to_le_bytes());
        for (x, &label) in self.samples.iter().zip(&self.labels) {
            out.extend_from_slice(&(label as u32).to_le_bytes());
            for v in x {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parses a buffer produced by [`Dataset::to_bytes`].
    ///
    /// # Panics
    ///
    /// Panics on malformed input (this is a test/bench conduit, not a
    /// protocol parser).
    pub fn from_bytes(bytes: &[u8], num_classes: usize) -> Dataset {
        let n = u32::from_le_bytes(bytes[0..4].try_into().expect("4")) as usize;
        let dim = u32::from_le_bytes(bytes[4..8].try_into().expect("4")) as usize;
        let mut samples = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut off = 8;
        for _ in 0..n {
            labels.push(u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4")) as usize);
            off += 4;
            let mut x = Vec::with_capacity(dim);
            for _ in 0..dim {
                x.push(f64::from_le_bytes(
                    bytes[off..off + 8].try_into().expect("8"),
                ));
                off += 8;
            }
            samples.push(x);
        }
        Dataset::new(samples, labels, num_classes)
    }
}

/// The five datasets of the paper's Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableVDataset {
    /// cod-rna: 2 classes, 59 535 training samples, 8 features.
    CodRna,
    /// colon-cancer: 2 classes, 62 training samples, 2 000 features.
    ColonCancer,
    /// dna: 3 classes, 2 000 train / 1 186 test, 180 features.
    Dna,
    /// phishing: 2 classes, 11 055 training samples, 68 features.
    Phishing,
    /// protein: 3 classes, 17 766 train / 6 621 test, 357 features.
    Protein,
}

impl TableVDataset {
    /// All five, in the paper's order.
    pub const ALL: [TableVDataset; 5] = [
        TableVDataset::CodRna,
        TableVDataset::ColonCancer,
        TableVDataset::Dna,
        TableVDataset::Phishing,
        TableVDataset::Protein,
    ];

    /// Paper name.
    pub fn name(self) -> &'static str {
        match self {
            TableVDataset::CodRna => "cod-rna",
            TableVDataset::ColonCancer => "colon-cancer",
            TableVDataset::Dna => "dna",
            TableVDataset::Phishing => "phishing",
            TableVDataset::Protein => "protein",
        }
    }

    /// `(classes, training size, testing size, features)` exactly as in
    /// Table V (`None` test size means the paper reuses training data).
    pub fn shape(self) -> (usize, usize, Option<usize>, usize) {
        match self {
            TableVDataset::CodRna => (2, 59_535, None, 8),
            TableVDataset::ColonCancer => (2, 62, None, 2_000),
            TableVDataset::Dna => (3, 2_000, Some(1_186), 180),
            TableVDataset::Phishing => (2, 11_055, None, 68),
            TableVDataset::Protein => (3, 17_766, Some(6_621), 357),
        }
    }

    /// Generates `(train, test)` synthetic datasets of this shape, scaled
    /// by `scale` (1.0 = the full Table V size). "For such datasets
    /// [without test data], we run the prediction experiments with a
    /// fraction of their training dataset."
    pub fn generate(self, scale: f64) -> (Dataset, Dataset) {
        self.generate_with_seed(scale, 0)
    }

    /// As [`TableVDataset::generate`], with `seed_offset` XORed into the
    /// name-derived base seed so experiments can draw different
    /// deterministic datasets of the same shape. Offset 0 reproduces
    /// [`TableVDataset::generate`] exactly.
    pub fn generate_with_seed(self, scale: f64, seed_offset: u64) -> (Dataset, Dataset) {
        let (classes, train_n, test_n, dim) = self.shape();
        let scaled = |n: usize| (((n as f64 * scale) as usize).max(classes * 4)).max(8);
        let train_total = scaled(train_n);
        let per_class = train_total.div_ceil(classes);
        let seed = seed_offset
            ^ self
                .name()
                .bytes()
                .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
        let train = Dataset::synthetic(classes, per_class, dim, seed);
        let test = match test_n {
            Some(t) => {
                let per_class_t = scaled(t).div_ceil(classes);
                Dataset::synthetic(classes, per_class_t, dim, seed ^ 0x5a5a)
            }
            None => train.truncate(scaled(train_n / 10)),
        };
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_shape() {
        let ds = Dataset::synthetic(3, 10, 5, 1);
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.dim(), 5);
        assert_eq!(ds.num_classes, 3);
    }

    #[test]
    fn synthetic_deterministic() {
        let a = Dataset::synthetic(2, 5, 3, 9);
        let b = Dataset::synthetic(2, 5, 3, 9);
        assert_eq!(a.samples, b.samples);
        let c = Dataset::synthetic(2, 5, 3, 10);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn bytes_roundtrip() {
        let ds = Dataset::synthetic(2, 6, 4, 7);
        let back = Dataset::from_bytes(&ds.to_bytes(), 2);
        assert_eq!(back.samples, ds.samples);
        assert_eq!(back.labels, ds.labels);
    }

    #[test]
    fn table_v_shapes_match_paper() {
        assert_eq!(TableVDataset::CodRna.shape(), (2, 59_535, None, 8));
        assert_eq!(TableVDataset::ColonCancer.shape(), (2, 62, None, 2_000));
        assert_eq!(TableVDataset::Dna.shape(), (3, 2_000, Some(1_186), 180));
        assert_eq!(TableVDataset::Phishing.shape(), (2, 11_055, None, 68));
        assert_eq!(
            TableVDataset::Protein.shape(),
            (3, 17_766, Some(6_621), 357)
        );
    }

    #[test]
    fn generate_scales() {
        let (train, test) = TableVDataset::Dna.generate(0.01);
        assert_eq!(train.dim(), 180);
        assert_eq!(train.num_classes, 3);
        assert!(train.len() >= 12);
        assert!(!test.is_empty());
        assert!(train.len() < 2_000);
    }

    #[test]
    fn seed_offset_zero_matches_generate() {
        let (a, _) = TableVDataset::Dna.generate(0.01);
        let (b, _) = TableVDataset::Dna.generate_with_seed(0.01, 0);
        assert_eq!(a.samples, b.samples);
        let (c, _) = TableVDataset::Dna.generate_with_seed(0.01, 7);
        assert_eq!(c.dim(), a.dim());
        assert_eq!(c.len(), a.len());
        assert_ne!(c.samples, a.samples, "offset draws a different dataset");
    }

    #[test]
    fn truncate_caps_at_len() {
        let ds = Dataset::synthetic(2, 3, 2, 0);
        assert_eq!(ds.truncate(100).len(), 6);
        assert_eq!(ds.truncate(4).len(), 4);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        Dataset::new(vec![vec![0.0]], vec![5], 2);
    }
}
