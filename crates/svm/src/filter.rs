//! The privacy filter of case study § VI-B.
//!
//! "The inner enclaves decrypt data (the highest secret data) and filter
//! private data not to expose them to the outer enclave." The filter runs
//! in the per-user inner enclave; only its output is handed to the shared
//! LibSVM library in the outer enclave.

use crate::data::Dataset;

/// Policy describing which feature columns are private.
#[derive(Debug, Clone, Default)]
pub struct FilterPolicy {
    /// Columns to suppress entirely (replaced by 0, the field's mean under
    /// our scaling).
    pub drop_columns: Vec<usize>,
    /// Columns to coarsen by quantization step (k-anonymity style).
    pub quantize: Vec<(usize, f64)>,
}

impl FilterPolicy {
    /// Applies the policy, producing the sanitized dataset that may leave
    /// the inner enclave.
    pub fn anonymize(&self, ds: &Dataset) -> Dataset {
        let samples = ds
            .samples
            .iter()
            .map(|x| {
                let mut y = x.clone();
                for &c in &self.drop_columns {
                    if c < y.len() {
                        y[c] = 0.0;
                    }
                }
                for &(c, step) in &self.quantize {
                    if c < y.len() && step > 0.0 {
                        y[c] = (y[c] / step).round() * step;
                    }
                }
                y
            })
            .collect();
        Dataset::new(samples, ds.labels.clone(), ds.num_classes)
    }

    /// True if a sanitized dataset could still reveal the named column
    /// (used by tests to assert the filter's guarantee).
    pub fn retains_column(&self, column: usize) -> bool {
        !self.drop_columns.contains(&column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::new(
            vec![vec![1.23, 4.56, 7.89], vec![-3.21, 0.5, 2.0]],
            vec![0, 1],
            2,
        )
    }

    #[test]
    fn drops_private_columns() {
        let p = FilterPolicy {
            drop_columns: vec![1],
            quantize: vec![],
        };
        let out = p.anonymize(&ds());
        assert_eq!(out.samples[0][1], 0.0);
        assert_eq!(out.samples[1][1], 0.0);
        assert_eq!(out.samples[0][0], 1.23, "other columns untouched");
        assert!(!p.retains_column(1));
        assert!(p.retains_column(0));
    }

    #[test]
    fn quantizes_coarsely() {
        let p = FilterPolicy {
            drop_columns: vec![],
            quantize: vec![(0, 1.0)],
        };
        let out = p.anonymize(&ds());
        assert_eq!(out.samples[0][0], 1.0);
        assert_eq!(out.samples[1][0], -3.0);
    }

    #[test]
    fn labels_preserved() {
        let p = FilterPolicy::default();
        let out = p.anonymize(&ds());
        assert_eq!(out.labels, vec![0, 1]);
    }

    #[test]
    fn out_of_range_columns_ignored() {
        let p = FilterPolicy {
            drop_columns: vec![99],
            quantize: vec![(99, 2.0)],
        };
        let out = p.anonymize(&ds());
        assert_eq!(out.samples, ds().samples);
    }
}
