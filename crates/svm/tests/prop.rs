//! Property-based tests for datasets and the privacy filter.

use ne_svm::data::Dataset;
use ne_svm::filter::FilterPolicy;
use proptest::prelude::*;

proptest! {
    /// Serialization round-trips any dataset shape.
    #[test]
    fn dataset_bytes_roundtrip(
        classes in 2..4usize,
        per_class in 1..12usize,
        dim in 1..16usize,
        seed in any::<u64>(),
    ) {
        let ds = Dataset::synthetic(classes, per_class, dim, seed);
        let back = Dataset::from_bytes(&ds.to_bytes(), classes);
        prop_assert_eq!(back.labels, ds.labels);
        prop_assert_eq!(back.samples, ds.samples);
    }

    /// The filter is idempotent and never changes shape or labels.
    #[test]
    fn filter_idempotent(
        per_class in 1..10usize,
        dim in 2..12usize,
        drop in prop::collection::vec(0..12usize, 0..4),
        seed in any::<u64>(),
    ) {
        let ds = Dataset::synthetic(2, per_class, dim, seed);
        let policy = FilterPolicy { drop_columns: drop, quantize: vec![] };
        let once = policy.anonymize(&ds);
        let twice = policy.anonymize(&once);
        prop_assert_eq!(&once.samples, &twice.samples);
        prop_assert_eq!(&once.labels, &ds.labels);
        prop_assert_eq!(once.dim(), ds.dim());
        // Dropped in-range columns really are scrubbed.
        for &c in &policy.drop_columns {
            if c < ds.dim() {
                prop_assert!(once.samples.iter().all(|x| x[c] == 0.0));
            }
        }
    }

    /// Synthetic data is deterministic in the seed and shaped as asked.
    #[test]
    fn synthetic_shape_and_determinism(
        classes in 2..4usize,
        per_class in 1..8usize,
        dim in 1..8usize,
        seed in any::<u64>(),
    ) {
        let a = Dataset::synthetic(classes, per_class, dim, seed);
        let b = Dataset::synthetic(classes, per_class, dim, seed);
        prop_assert_eq!(&a.samples, &b.samples);
        prop_assert_eq!(a.len(), classes * per_class);
        prop_assert_eq!(a.dim(), dim);
        for label in 0..classes {
            prop_assert_eq!(a.labels.iter().filter(|&&l| l == label).count(), per_class);
        }
    }
}
