//! Integer-permille SLO policy and the multi-window burn-rate monitor.
//!
//! All arithmetic is integer (permille of the error budget), so SLO
//! verdicts are byte-deterministic and shard-fold-stable — no floats
//! ever reach an export.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::window::Window;

/// Per-tenant service-level state for one window. Ordered so that
/// `max` picks the worst state when windows fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    /// Burn rates below the warn threshold.
    Ok,
    /// Short- or long-window burn at or above the warn threshold.
    Warn,
    /// Short-window burn at or above the page threshold, confirmed by
    /// a long-window burn at or above the warn threshold (the classic
    /// fast-burn + slow-confirmation pairing, so a single noisy window
    /// cannot page on its own).
    Page,
}

impl SloState {
    /// Stable lowercase name (export key).
    pub fn name(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warn => "warn",
            SloState::Page => "page",
        }
    }
}

/// The SLO targets and burn-rate thresholds a timeline is judged
/// against. Defaults are calibrated to the committed `ne-load`
/// baseline: a clean closed-loop run's p99 sits around 0.7M cycles,
/// so a 1M-cycle latency target plus a 99.0% availability target make
/// clean runs quiet and chaos runs loud.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloPolicy {
    /// End-to-end latency target in simulated cycles; a completion
    /// above this is an SLO violation.
    pub latency_target: u64,
    /// Availability target in permille of terminated requests (990 =
    /// 99.0%; the error budget is the permille remainder).
    pub availability_permille: u64,
    /// Long-window lookback length, in windows, for the slow burn
    /// confirmation.
    pub long_windows: usize,
    /// Warn when either burn rate reaches this (1000 = consuming the
    /// error budget exactly at the sustainable rate).
    pub warn_burn: u64,
    /// Page when the short burn reaches this and the long burn
    /// confirms at [`SloPolicy::warn_burn`].
    pub page_burn: u64,
}

impl Default for SloPolicy {
    fn default() -> SloPolicy {
        SloPolicy {
            latency_target: 1_000_000,
            availability_permille: 990,
            long_windows: 6,
            warn_burn: 1_000,
            page_burn: 10_000,
        }
    }
}

impl SloPolicy {
    /// The error budget in permille of terminated requests (at least
    /// 1, so a 100% availability target stays well-defined).
    pub fn budget_permille(&self) -> u64 {
        (1_000u64.saturating_sub(self.availability_permille)).max(1)
    }

    /// Burn rate for `bad` SLO-bad outcomes out of `total` terminated
    /// requests, in permille of the error budget consumption rate:
    /// 1000 means errors arrive exactly at the budgeted rate, 10_000
    /// means ten times over budget. Zero traffic burns nothing.
    pub fn burn(&self, bad: u64, total: u64) -> u64 {
        bad.saturating_mul(1_000_000)
            .checked_div(total)
            .unwrap_or(0)
            / self.budget_permille()
    }

    /// The verdict for a (short, long) burn-rate pair.
    pub fn state(&self, burn_short: u64, burn_long: u64) -> SloState {
        if burn_short >= self.page_burn && burn_long >= self.warn_burn {
            SloState::Page
        } else if burn_short >= self.warn_burn || burn_long >= self.warn_burn {
            SloState::Warn
        } else {
            SloState::Ok
        }
    }
}

/// Evaluates the burn-rate monitor over a window sequence in index
/// order, writing the verdict into every tenant row. The long window
/// is a trailing sum over the last [`SloPolicy::long_windows`] windows
/// including the current one; windows where a tenant has no traffic
/// count as zero-burn windows in its lookback.
pub fn annotate(policy: &SloPolicy, windows: &mut [Window]) {
    let mut trailing: BTreeMap<usize, VecDeque<(u64, u64)>> = BTreeMap::new();
    for w in windows.iter() {
        for row in &w.tenants {
            trailing.entry(row.tenant).or_default();
        }
    }
    for w in windows.iter_mut() {
        for (tenant, deque) in trailing.iter_mut() {
            let (bad, total) = w
                .tenants
                .iter()
                .find(|r| r.tenant == *tenant)
                .map(|r| (r.bad(), r.total()))
                .unwrap_or((0, 0));
            deque.push_back((bad, total));
            while deque.len() > policy.long_windows.max(1) {
                deque.pop_front();
            }
            if let Some(row) = w.tenants.iter_mut().find(|r| r.tenant == *tenant) {
                let (lb, lt) = deque
                    .iter()
                    .fold((0u64, 0u64), |(b, t), &(db, dt)| (b + db, t + dt));
                row.burn_short = policy.burn(bad, total);
                row.burn_long = policy.burn(lb, lt);
                row.slo = policy.state(row.burn_short, row.burn_long);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{TenantWindow, Window};

    #[test]
    fn burn_rates_are_integer_permille_of_budget() {
        let p = SloPolicy::default(); // budget = 10 permille
        assert_eq!(p.burn(0, 100), 0);
        // 1 bad in 100 = 10 permille error rate = exactly on budget.
        assert_eq!(p.burn(1, 100), 1_000);
        // All bad = 1000 permille = 100x budget.
        assert_eq!(p.burn(50, 50), 100_000);
        assert_eq!(p.burn(5, 0), 0);
    }

    #[test]
    fn page_needs_fast_burn_plus_slow_confirmation() {
        let p = SloPolicy::default();
        assert_eq!(p.state(0, 0), SloState::Ok);
        assert_eq!(p.state(1_000, 0), SloState::Warn);
        assert_eq!(p.state(0, 1_000), SloState::Warn);
        // Fast burn without slow confirmation stays at warn.
        assert_eq!(p.state(10_000, 999), SloState::Warn);
        assert_eq!(p.state(10_000, 1_000), SloState::Page);
    }

    fn window_with(index: u64, tenant: usize, completed: u64, shed: u64) -> Window {
        let mut w = Window::new(index);
        let mut row = TenantWindow::new(tenant);
        row.completed = completed;
        row.shed = shed;
        w.tenants.push(row);
        w
    }

    #[test]
    fn annotate_walks_the_trailing_window() {
        let p = SloPolicy {
            long_windows: 2,
            ..SloPolicy::default()
        };
        // Window 0 clean, window 1 a total outage, window 2 clean again.
        let mut ws = vec![
            window_with(0, 0, 100, 0),
            window_with(1, 0, 0, 50),
            window_with(2, 0, 100, 0),
        ];
        annotate(&p, &mut ws);
        assert_eq!(ws[0].tenants[0].slo, SloState::Ok);
        let outage = &ws[1].tenants[0];
        assert_eq!(outage.burn_short, 100_000);
        // Long window spans windows 0..=1: 50 bad of 150 total.
        assert_eq!(outage.burn_long, 33_333);
        assert_eq!(outage.slo, SloState::Page);
        // The window after the outage still warns through the lookback.
        let after = &ws[2].tenants[0];
        assert_eq!(after.burn_short, 0);
        assert_eq!(after.burn_long, 33_333);
        assert_eq!(after.slo, SloState::Warn);
    }
}
