//! The [`Sampler`]: rides along a driving loop, snapshots cumulative
//! server counters, and closes a window each time the serving clock is
//! observed past a window boundary.
//!
//! Windows hold **deltas** of cumulative counters, so the sum of all
//! windows telescopes back to the end-of-run totals exactly; the
//! per-window latency histograms are built from the window's own
//! completions, and the server records exactly one `Request` profile
//! sample per completion, so those reconcile exactly too (both are
//! enforced by test).

use ne_host::server::HostServer;

use crate::slo::{self, SloPolicy};
use crate::window::{Checkpoint, Injection, Recovery, TenantTotal, TenantWindow, Timeline, Window};

/// Sampler knobs. Defaults give ~10 windows on the committed `ne-load`
/// baseline (runs of ~20M serving cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Window length in simulated serving-clock cycles.
    pub window_cycles: u64,
    /// Bounded ring capacity (older windows roll into the base).
    pub capacity: usize,
    /// Emit a reply-stream checkpoint every this many completions per
    /// (tenant, service) pair.
    pub checkpoint_every: u64,
    /// SLO policy to judge tenant rows against.
    pub slo: SloPolicy,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            window_cycles: 2_000_000,
            capacity: 1_024,
            checkpoint_every: 4,
            slo: SloPolicy::default(),
        }
    }
}

/// Cumulative per-tenant counter snapshot (for window deltas).
#[derive(Debug, Clone, Copy, Default)]
struct TenantSnap {
    accepted: u64,
    completed: u64,
    shed: u64,
    rejected: u64,
    respawns: u64,
}

fn snap(server: &HostServer) -> Vec<TenantSnap> {
    server
        .tenants()
        .iter()
        .zip(server.recovery_states())
        .map(|(t, r)| TenantSnap {
            accepted: t.accepted,
            completed: t.completed,
            shed: t.shed_requests,
            rejected: t.rejected_full + t.rejected_shed,
            respawns: r.respawns,
        })
        .collect()
}

/// Opaque cross-sampler carry for one migrating tenant: the source
/// sampler's last-observed counter cursor, handed from
/// [`Sampler::retire_tenant`] to the destination's
/// [`Sampler::adopt_tenant`]. Seeding the destination's delta cursor
/// with it makes the destination's first window pick up exactly the
/// increments that landed between the source's last window close and
/// adoption (for example requests shed during the migration quiesce),
/// so per-tenant window deltas keep telescoping to the end-of-run
/// totals across the move.
#[derive(Debug, Clone, Copy)]
pub struct TenantCarry(TenantSnap);

/// Observes a [`HostServer`] and grows a [`Timeline`]. Create one
/// right after `reset_measurement` (and after chaos is installed),
/// call [`Sampler::poll`] after every server step, and
/// [`Sampler::finish`] once the run drains.
#[derive(Debug)]
pub struct Sampler {
    cfg: SamplerConfig,
    /// Local tenant index → global tenant id.
    globals: Vec<usize>,
    /// Local slots whose tenant migrated away (extracted); they emit
    /// no totals and only non-empty window rows.
    retired: Vec<bool>,
    /// Per-local completion-index floor: completion records below this
    /// index are not window-attributed (an adopted slot's carried
    /// copies were already attributed by the source sampler).
    adopted_floor: Vec<usize>,
    timeline: Timeline,
    next_boundary: u64,
    next_index: u64,
    prev_cycles: u64,
    prev_stats: ne_sgx::trace::Stats,
    prev_degraded: u64,
    prev_tenants: Vec<TenantSnap>,
    base_tenants: Vec<TenantSnap>,
    completions_seen: usize,
    base_completions: usize,
    chaos_seen: usize,
    recovery_seen: usize,
}

impl Sampler {
    /// Starts sampling `server`. `globals[local]` maps the server's
    /// local tenant indices to global (cluster-wide) tenant ids; pass
    /// the identity mapping for an unsharded server.
    pub fn new(server: &HostServer, globals: Vec<usize>, cfg: SamplerConfig) -> Sampler {
        assert_eq!(
            globals.len(),
            server.tenants().len(),
            "globals must map every tenant"
        );
        let window = cfg.window_cycles.max(1);
        let start = server.now();
        let tenants = snap(server);
        Sampler {
            cfg: SamplerConfig {
                window_cycles: window,
                ..cfg
            },
            retired: vec![false; globals.len()],
            adopted_floor: vec![0; globals.len()],
            globals,
            timeline: Timeline::new(window, cfg.capacity, cfg.slo, cfg.checkpoint_every),
            next_boundary: (start / window + 1) * window,
            next_index: start / window,
            prev_cycles: server.app.machine.total_cycles(),
            prev_stats: server.app.machine.stats(),
            prev_degraded: server.degraded_replies(),
            prev_tenants: tenants.clone(),
            base_tenants: tenants,
            completions_seen: server.completions().len(),
            base_completions: server.completions().len(),
            chaos_seen: server.app.machine.chaos_events().len(),
            recovery_seen: server.recovery_events().len(),
        }
    }

    /// The timeline grown so far (closed windows only).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Marks global tenant `global`'s live local slot as migrated away.
    /// Call right after `HostServer::extract_tenant`. The retired slot
    /// stops contributing totals and checkpoints (the adopting sampler
    /// owns the tenant's full history from then on) and its zeroed
    /// server counters read as clean zero deltas. Returns the carry to
    /// hand to the destination sampler's [`Sampler::adopt_tenant`].
    ///
    /// # Panics
    ///
    /// If `global` has no live (un-retired) slot on this sampler —
    /// that is a driver bug, not an observable condition.
    pub fn retire_tenant(&mut self, global: usize) -> TenantCarry {
        let l = self
            .globals
            .iter()
            .zip(&self.retired)
            .position(|(g, retired)| *g == global && !retired)
            .unwrap_or_else(|| panic!("retire_tenant: tenant {global} has no live slot here"));
        self.retired[l] = true;
        let carry = TenantCarry(self.prev_tenants[l]);
        // Extract zeroes the dead slot's counters; zero the cursor to
        // match so later windows see zero deltas, not underflow. The
        // increments between the last close and extract travel to the
        // destination inside the carry.
        self.prev_tenants[l] = TenantSnap::default();
        carry
    }

    /// Registers the local slot `HostServer::adopt_tenant` just
    /// appended for global tenant `global`. Call immediately after the
    /// adoption commits, before the next poll. The slot's totals start
    /// from zero (so the end-of-run totals line covers the tenant's
    /// full carried history), its window cursor starts from `carry`
    /// (so the first window holds exactly the migration-gap
    /// increments), and the carried completion copies — already
    /// window-attributed by the source sampler — are excluded from
    /// this sampler's window histograms.
    pub fn adopt_tenant(&mut self, server: &HostServer, global: usize, carry: TenantCarry) {
        assert_eq!(
            self.globals.len() + 1,
            server.tenants().len(),
            "adopt_tenant wants exactly the one new slot"
        );
        self.globals.push(global);
        self.retired.push(false);
        self.prev_tenants.push(carry.0);
        self.base_tenants.push(TenantSnap::default());
        self.adopted_floor.push(server.completions().len());
    }

    /// Observes the server, closing every window the serving clock has
    /// crossed since the last poll. Call after each server step; extra
    /// calls are free.
    pub fn poll(&mut self, server: &HostServer) {
        while server.now() >= self.next_boundary {
            self.close(server);
        }
    }

    /// True if any counter moved or any event landed since the last
    /// window close.
    fn pending(&self, server: &HostServer) -> bool {
        server.app.machine.total_cycles() != self.prev_cycles
            || server.completions().len() != self.completions_seen
            || server.app.machine.chaos_events().len() != self.chaos_seen
            || server.recovery_events().len() != self.recovery_seen
            || snap(server)
                .iter()
                .zip(&self.prev_tenants)
                .any(|(a, b)| a.accepted != b.accepted || a.rejected != b.rejected)
    }

    /// Closes the current window with everything observed since the
    /// previous close.
    fn close(&mut self, server: &HostServer) {
        let mut w = Window::new(self.next_index);
        let machine = &server.app.machine;
        let cycles = machine.total_cycles();
        w.cycles = cycles - self.prev_cycles;
        self.prev_cycles = cycles;
        let stats = machine.stats();
        w.stats = stats_delta(&stats, &self.prev_stats);
        self.prev_stats = stats;
        let degraded = server.degraded_replies();
        w.degraded = degraded - self.prev_degraded;
        self.prev_degraded = degraded;
        w.free_epc = machine.free_epc_pages() as u64;
        w.resident = machine.resident_pages() as u64;

        // Per-tenant counter deltas plus gauges, in local order first.
        let cur = snap(server);
        assert_eq!(
            cur.len(),
            self.prev_tenants.len(),
            "server grew a tenant slot the sampler was not told about \
             (call adopt_tenant after every adoption)"
        );
        let mut rows: Vec<TenantWindow> = Vec::with_capacity(cur.len());
        for (l, (c, p)) in cur.iter().zip(&self.prev_tenants).enumerate() {
            let mut row = TenantWindow::new(self.globals[l]);
            row.accepted = c.accepted - p.accepted;
            row.completed = c.completed - p.completed;
            row.shed = c.shed - p.shed;
            row.rejected = c.rejected - p.rejected;
            row.respawns = c.respawns - p.respawns;
            row.breaker_open = server.recovery_states()[l].breaker_open;
            rows.push(row);
        }
        self.prev_tenants = cur;

        // This window's completions feed the latency histograms and
        // the exact violation counts. An adopted slot's carried copies
        // (below its floor) were attributed by the source sampler.
        let completions = server.completions();
        for (i, c) in completions.iter().enumerate().skip(self.completions_seen) {
            if i < self.adopted_floor[c.tenant] {
                continue;
            }
            let row = &mut rows[c.tenant];
            row.latency.record(c.latency);
            if c.latency > self.cfg.slo.latency_target {
                row.latency_violations += 1;
            }
        }
        self.completions_seen = server.completions().len();
        // A retired slot's row is empty except in the migration window
        // itself (completions landed before the extract); drop the
        // empty ones, and merge same-tenant rows when a migration left
        // this server holding both the retired and the adopted slot.
        let retired = &self.retired;
        let mut l = 0;
        rows.retain(|r| {
            let keep = !retired[l] || r.latency_violations > 0 || !r.latency.is_empty();
            l += 1;
            keep
        });
        rows.sort_by_key(|r| r.tenant);
        crate::window::coalesce_rows(&mut rows);
        w.tenants = rows;

        // Machine-side chaos injections, attributed via the server's
        // persistent eid → tenant map.
        for inj in &machine.chaos_events()[self.chaos_seen..] {
            w.injections.push(Injection {
                cycle: inj.cycle,
                eid: inj.eid,
                tenant: server.eid_owner(inj.eid).map(|l| self.globals[l]),
                kind: inj.kind,
            });
        }
        self.chaos_seen = machine.chaos_events().len();

        // Host-side recovery events.
        for ev in &server.recovery_events()[self.recovery_seen..] {
            w.recoveries.push(Recovery {
                cycle: ev.cycle,
                tenant: self.globals[ev.tenant],
                kind: ev.kind,
            });
        }
        self.recovery_seen = server.recovery_events().len();

        crate::window::sort_events(&mut w.injections, &mut w.recoveries);
        self.timeline.push(w);
        self.next_boundary += self.cfg.window_cycles;
        self.next_index += 1;
    }

    /// Finishes the run: closes the trailing partial window (if
    /// anything landed in it), computes per-tenant totals and
    /// reply-stream checkpoints, runs the SLO monitor over every
    /// window, and returns the timeline.
    pub fn finish(mut self, server: &HostServer) -> Timeline {
        self.poll(server);
        if self.pending(server) {
            self.close(server);
        }

        let cur = snap(server);
        for (l, (c, b)) in cur.iter().zip(&self.base_tenants).enumerate() {
            // A retired slot's tenant migrated away; the adopting
            // sampler owns its full history (carried completions
            // included), so exactly one totals line per global tenant
            // survives a cluster fold.
            if self.retired[l] {
                continue;
            }
            // Replies in (service, seq) order — the same layout as the
            // ne-tenants/v1 digest, so the totals line is part of the
            // shard-count-invariant data plane.
            let mut replies: Vec<&ne_host::Completion> = server.completions()
                [self.base_completions..]
                .iter()
                .filter(|r| r.tenant == l)
                .collect();
            replies.sort_by_key(|r| (r.service, r.seq));
            let mut bytes = Vec::new();
            for r in &replies {
                push_reply(&mut bytes, r);
            }
            self.timeline.totals.push(TenantTotal {
                tenant: self.globals[l],
                accepted: c.accepted - b.accepted,
                completed: c.completed - b.completed,
                shed: c.shed - b.shed,
                rejected: c.rejected - b.rejected,
                respawns: c.respawns - b.respawns,
                digest: ne_crypto::sha256_digest(&bytes),
            });

            // Rolling checkpoints per service: digest over the first
            // k * checkpoint_every replies in seq order.
            let services = server.tenants()[l].spec.services.len();
            for s in 0..services {
                let mut bytes = Vec::new();
                let mut n = 0u64;
                for r in replies.iter().filter(|r| r.service == s) {
                    push_reply(&mut bytes, r);
                    n += 1;
                    if n.is_multiple_of(self.cfg.checkpoint_every) {
                        self.timeline.checkpoints.push(Checkpoint {
                            tenant: self.globals[l],
                            service: s,
                            completions: n,
                            digest: ne_crypto::sha256_digest(&bytes),
                        });
                    }
                }
            }
        }
        self.timeline.totals.sort_by_key(|t| t.tenant);
        self.timeline
            .checkpoints
            .sort_by_key(|c| (c.tenant, c.service, c.completions));

        if let Some(base) = &mut self.timeline.base {
            slo::annotate(&self.cfg.slo, std::slice::from_mut(base));
        }
        slo::annotate(&self.cfg.slo, &mut self.timeline.windows);
        self.timeline
    }
}

fn push_reply(bytes: &mut Vec<u8>, c: &ne_host::Completion) {
    bytes.extend_from_slice(&(c.service as u32).to_le_bytes());
    bytes.extend_from_slice(&c.seq.to_le_bytes());
    bytes.extend_from_slice(&(c.reply.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&c.reply);
}

/// Field-wise `cur - prev` for the cumulative transition counters.
fn stats_delta(cur: &ne_sgx::trace::Stats, prev: &ne_sgx::trace::Stats) -> ne_sgx::trace::Stats {
    ne_sgx::trace::Stats {
        ecalls: cur.ecalls - prev.ecalls,
        ocalls: cur.ocalls - prev.ocalls,
        n_ecalls: cur.n_ecalls - prev.n_ecalls,
        n_ocalls: cur.n_ocalls - prev.n_ocalls,
        aexes: cur.aexes - prev.aexes,
        eresumes: cur.eresumes - prev.eresumes,
        switchless_ocalls: cur.switchless_ocalls - prev.switchless_ocalls,
        tlb_misses: cur.tlb_misses - prev.tlb_misses,
        faults: cur.faults - prev.faults,
        ewb_pages: cur.ewb_pages - prev.ewb_pages,
        eldu_pages: cur.eldu_pages - prev.eldu_pages,
        ipis: cur.ipis - prev.ipis,
        span_opens: cur.span_opens - prev.span_opens,
        span_closes: cur.span_closes - prev.span_closes,
    }
}
