//! A deterministic text dashboard: the timeline replayed as one frame
//! per window, plus a throughput sparkline and the incident report.
//!
//! Everything is derived from the (simulated-cycle) timeline, so the
//! output is byte-stable — `ne-load --dash` prints it after the run.

use crate::incident::{correlate, render_incidents};
use crate::slo::SloState;
use crate::window::{Timeline, Window};

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| match (v * 7).checked_div(max) {
            None => SPARKS[0],
            Some(i) => SPARKS[i as usize],
        })
        .collect()
}

/// Compact cycle counts: `2.0M`, `512.0k`, `950`.
fn short(cycles: u64) -> String {
    if cycles >= 1_000_000 {
        format!("{}.{}M", cycles / 1_000_000, (cycles % 1_000_000) / 100_000)
    } else if cycles >= 1_000 {
        format!("{}.{}k", cycles / 1_000, (cycles % 1_000) / 100)
    } else {
        format!("{cycles}")
    }
}

fn frame(w: &Window, window_cycles: u64) -> String {
    let req = w.request();
    let lo = w.index * window_cycles;
    let hi = (w.index + w.folded) * window_cycles;
    let mut out = format!(
        "window {:>3} [{:>7}..{:>7})  done {:>5}  shed {:>4}  p50 {:>8}  p99 {:>8}  \
         epc_free {:>5}  inj {:>3}  rec {:>3}\n",
        w.index,
        short(lo),
        short(hi),
        w.completed(),
        w.shed(),
        req.percentile(0.50),
        req.percentile(0.99),
        w.free_epc,
        w.injections.len(),
        w.recoveries.len()
    );
    for t in &w.tenants {
        let state = match t.slo {
            SloState::Ok => "ok  ",
            SloState::Warn => "WARN",
            SloState::Page => "PAGE",
        };
        out.push_str(&format!(
            "  t{:<3} {state}  done {:>5}  shed {:>4}  viol {:>4}  burn {:>6}/{:<6}{}\n",
            t.tenant,
            t.completed,
            t.shed,
            t.latency_violations,
            t.burn_short,
            t.burn_long,
            if t.breaker_open { "  breaker" } else { "" }
        ));
    }
    out
}

/// Renders the full dashboard: header, throughput sparkline, one frame
/// per window (base roll-up included), and the incident report.
pub fn render(t: &Timeline, label: &str) -> String {
    let mut out = format!(
        "── ne-obs dash · {label} · {} windows of {} cycles · {} shard{} ──\n",
        t.raw_windows(),
        t.window_cycles,
        t.shards,
        if t.shards == 1 { "" } else { "s" }
    );
    let done: Vec<u64> = t.all_windows().map(|w| w.completed()).collect();
    out.push_str(&format!("throughput  {}\n", sparkline(&done)));
    let shed: Vec<u64> = t.all_windows().map(|w| w.shed()).collect();
    if shed.iter().any(|&s| s > 0) {
        out.push_str(&format!("shed        {}\n", sparkline(&shed)));
    }
    out.push('\n');
    for w in t.all_windows() {
        out.push_str(&frame(w, t.window_cycles));
    }
    out.push('\n');
    out.push_str(&render_incidents(&correlate(t)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloPolicy;
    use crate::window::{TenantWindow, Window};

    #[test]
    fn dash_is_deterministic_text() {
        let mut t = Timeline::new(1_000, 8, SloPolicy::default(), 4);
        let mut w = Window::new(0);
        let mut row = TenantWindow::new(0);
        row.completed = 3;
        row.latency.record(500);
        w.tenants.push(row);
        t.push(w);
        let a = render(&t, "unit");
        assert_eq!(a, render(&t, "unit"));
        assert!(a.contains("ne-obs dash"));
        assert!(a.contains("window   0"));
        assert!(a.contains("no incidents"));
    }

    #[test]
    fn sparkline_scales_to_the_max() {
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        assert_eq!(sparkline(&[1, 7]), "▂█");
        assert_eq!(short(2_000_000), "2.0M");
        assert_eq!(short(512_300), "512.3k");
        assert_eq!(short(950), "950");
    }
}
