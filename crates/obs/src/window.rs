//! The timeline data model: per-window deltas, the bounded window
//! ring, per-tenant rows, and the shard fold algebra.
//!
//! Two distinct merges exist and must not be confused:
//!
//! * [`Window::merge_shard`] combines **the same window index** from
//!   different shards (gauges sum — they are per-shard machines);
//! * [`Window::roll`] folds **an older window into a newer epoch**
//!   when the bounded ring evicts it (gauges keep the newer value).

use ne_host::RecoveryEventKind;
use ne_sgx::fault::ChaosKind;
use ne_sgx::profile::Histogram;
use ne_sgx::trace::Stats;

use crate::slo::{SloPolicy, SloState};

/// A chaos injection attributed to a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Simulated cycle on the injecting core.
    pub cycle: u64,
    /// Faulted enclave id. For crash injections this is the chosen
    /// victim (possibly an inner enclave), not the entered enclave.
    pub eid: u64,
    /// Global id of the tenant owning the enclave, when known.
    pub tenant: Option<usize>,
    /// What was injected.
    pub kind: ChaosKind,
}

/// A recovery-layer event attributed to a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Simulated cycle the event was logged at.
    pub cycle: u64,
    /// Global id of the affected tenant.
    pub tenant: usize,
    /// What happened (see [`ne_host::RecoveryEventKind`]).
    pub kind: RecoveryEventKind,
}

/// Canonical sort key for recovery events: cycles across cores are not
/// mutually ordered, so windows impose this total order at close time.
fn recovery_key(r: &Recovery) -> (u64, usize, &'static str, &'static str, u64) {
    let (detail, wait) = match r.kind {
        RecoveryEventKind::Backoff { wait } => ("", wait),
        RecoveryEventKind::Shed(reason) => (reason.name(), 0),
        _ => ("", 0),
    };
    (r.cycle, r.tenant, r.kind.name(), detail, wait)
}

/// Sorts a window's event lists into their canonical order. Applied at
/// window close and again after a shard fold, so a one-shard fold is
/// the identity.
pub(crate) fn sort_events(injections: &mut [Injection], recoveries: &mut [Recovery]) {
    injections.sort_by_key(|i| (i.cycle, i.eid, i.kind.name()));
    recoveries.sort_by_key(recovery_key);
}

/// One tenant's slice of one window: traffic counter deltas, the
/// window's latency histogram, and the SLO verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantWindow {
    /// Global tenant id.
    pub tenant: usize,
    /// Requests admitted this window.
    pub accepted: u64,
    /// Requests completed this window.
    pub completed: u64,
    /// Accepted requests shed by the recovery layer this window.
    pub shed: u64,
    /// Submissions rejected (queue full or tenant shed) this window.
    pub rejected: u64,
    /// Enclave respawns this window.
    pub respawns: u64,
    /// Circuit-breaker state at window close (gauge).
    pub breaker_open: bool,
    /// Completions whose latency exceeded the SLO target this window.
    pub latency_violations: u64,
    /// End-to-end latency of this window's completions.
    pub latency: Histogram,
    /// SLO state for this window (set by the burn-rate monitor).
    pub slo: SloState,
    /// Short (single-window) burn rate, in permille of the error
    /// budget consumption rate (1000 = consuming budget exactly).
    pub burn_short: u64,
    /// Long (trailing multi-window) burn rate, same unit.
    pub burn_long: u64,
}

impl TenantWindow {
    /// An all-zero row for `tenant`.
    pub fn new(tenant: usize) -> TenantWindow {
        TenantWindow {
            tenant,
            accepted: 0,
            completed: 0,
            shed: 0,
            rejected: 0,
            respawns: 0,
            breaker_open: false,
            latency_violations: 0,
            latency: Histogram::new(),
            slo: SloState::Ok,
            burn_short: 0,
            burn_long: 0,
        }
    }

    /// Terminated requests this window (the reply-or-shed universe).
    pub fn total(&self) -> u64 {
        self.completed + self.shed
    }

    /// SLO-bad outcomes this window: sheds plus latency violations.
    pub fn bad(&self) -> u64 {
        self.shed + self.latency_violations
    }

    /// Accumulates another row for the same tenant (used by both merge
    /// directions; `newer_gauges` selects roll vs merge semantics for
    /// the breaker gauge).
    fn accumulate(&mut self, other: &TenantWindow, newer_gauges: bool) {
        self.accepted += other.accepted;
        self.completed += other.completed;
        self.shed += other.shed;
        self.rejected += other.rejected;
        self.respawns += other.respawns;
        self.breaker_open = if newer_gauges {
            other.breaker_open
        } else {
            self.breaker_open || other.breaker_open
        };
        self.latency_violations += other.latency_violations;
        self.latency.merge(&other.latency);
        self.slo = self.slo.max(other.slo);
        self.burn_short = self.burn_short.max(other.burn_short);
        self.burn_long = self.burn_long.max(other.burn_long);
    }
}

/// Coalesces adjacent rows with the same global tenant id (input must
/// be sorted by tenant). A live migration can briefly leave one server
/// with two local slots for the same global tenant — the retired
/// source slot and the adopted destination slot — and their rows for
/// the migration window merge exactly like a shard merge.
pub(crate) fn coalesce_rows(rows: &mut Vec<TenantWindow>) {
    let mut out: Vec<TenantWindow> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        match out.last_mut() {
            Some(last) if last.tenant == row.tenant => last.accumulate(&row, false),
            _ => out.push(row),
        }
    }
    *rows = out;
}

/// One closed observation window.
#[derive(Debug, Clone)]
pub struct Window {
    /// Window index: the window covers serving-clock cycles
    /// `[index * window_cycles, (index + 1) * window_cycles)`, modulo
    /// observation lag (a window closes when the clock is first
    /// *observed* past the boundary, so late-arriving deltas land in
    /// the closing window — deterministically).
    pub index: u64,
    /// Raw windows folded into this one (1 for a plain window; the
    /// ring's base window grows this as it absorbs evictions).
    pub folded: u64,
    /// Simulated cycles spent this window (delta of total cycles
    /// across cores).
    pub cycles: u64,
    /// Transition/paging counter deltas for this window.
    pub stats: Stats,
    /// Free EPC pages at window close (gauge).
    pub free_epc: u64,
    /// Resident EPC pages at window close (gauge).
    pub resident: u64,
    /// Degraded replies produced this window.
    pub degraded: u64,
    /// Per-tenant rows, sorted by global tenant id. Every tenant of
    /// the observed server gets a row, even an all-zero one.
    pub tenants: Vec<TenantWindow>,
    /// Chaos injections that landed this window, canonically sorted.
    pub injections: Vec<Injection>,
    /// Recovery events logged this window, canonically sorted.
    pub recoveries: Vec<Recovery>,
}

impl Window {
    /// An empty window for `index`.
    pub fn new(index: u64) -> Window {
        Window {
            index,
            folded: 1,
            cycles: 0,
            stats: Stats::default(),
            free_epc: 0,
            resident: 0,
            degraded: 0,
            tenants: Vec::new(),
            injections: Vec::new(),
            recoveries: Vec::new(),
        }
    }

    /// The window's merged request-latency histogram across tenants.
    pub fn request(&self) -> Histogram {
        let mut h = Histogram::new();
        for t in &self.tenants {
            h.merge(&t.latency);
        }
        h
    }

    /// Completions this window, summed over tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Sheds this window, summed over tenants.
    pub fn shed(&self) -> u64 {
        self.tenants.iter().map(|t| t.shed).sum()
    }

    /// Shared body of the two merges.
    fn accumulate(&mut self, other: &Window, newer_gauges: bool) {
        self.cycles += other.cycles;
        self.stats.merge(&other.stats);
        if newer_gauges {
            self.free_epc = other.free_epc;
            self.resident = other.resident;
        } else {
            self.free_epc += other.free_epc;
            self.resident += other.resident;
        }
        self.degraded += other.degraded;
        // Union of tenant rows by global id (both sides sorted).
        let mut merged: Vec<TenantWindow> = Vec::with_capacity(self.tenants.len());
        let (mut a, mut b) = (self.tenants.iter(), other.tenants.iter());
        let (mut na, mut nb) = (a.next(), b.next());
        loop {
            match (na, nb) {
                (Some(x), Some(y)) if x.tenant == y.tenant => {
                    let mut row = x.clone();
                    row.accumulate(y, newer_gauges);
                    merged.push(row);
                    na = a.next();
                    nb = b.next();
                }
                (Some(x), Some(y)) if x.tenant < y.tenant => {
                    merged.push(x.clone());
                    na = a.next();
                    nb = Some(y);
                }
                (Some(x), Some(y)) => {
                    merged.push(y.clone());
                    na = Some(x);
                    nb = b.next();
                }
                (Some(x), None) => {
                    merged.push(x.clone());
                    na = a.next();
                    nb = None;
                }
                (None, Some(y)) => {
                    merged.push(y.clone());
                    na = None;
                    nb = b.next();
                }
                (None, None) => break,
            }
        }
        self.tenants = merged;
        self.injections.extend_from_slice(&other.injections);
        self.recoveries.extend_from_slice(&other.recoveries);
        sort_events(&mut self.injections, &mut self.recoveries);
    }

    /// Merges the same window index from another shard: counters add,
    /// gauges sum (each shard is its own machine), tenant rows union
    /// (global ids are disjoint across shards), events re-sort into
    /// canonical order. Merging with an empty window is the identity.
    pub fn merge_shard(&mut self, other: &Window) {
        debug_assert_eq!(
            self.index, other.index,
            "merge_shard wants matching indices"
        );
        self.folded = self.folded.max(other.folded);
        self.accumulate(other, false);
    }

    /// Rolls a **newer** window into this one when the bounded ring
    /// evicts it: counters add, gauges take the newer value, `folded`
    /// counts the absorbed raw windows.
    pub fn roll(&mut self, newer: &Window) {
        let folded = self.folded + newer.folded;
        self.accumulate(newer, true);
        self.folded = folded;
    }
}

/// A per-tenant end-of-run total with the reply digest — the
/// shard-count-invariant data plane of the export (mirrors the
/// `ne-tenants/v1` oracle: replies and traffic counters are identical
/// at every shard count under clean runs, even though cycle counts
/// drift ~0.1%).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantTotal {
    /// Global tenant id.
    pub tenant: usize,
    /// Requests admitted over the run.
    pub accepted: u64,
    /// Requests completed over the run.
    pub completed: u64,
    /// Accepted requests shed over the run.
    pub shed: u64,
    /// Submissions rejected over the run.
    pub rejected: u64,
    /// Enclave respawns over the run.
    pub respawns: u64,
    /// SHA-256 over the tenant's replies in (service, seq) order, in
    /// the same byte layout as the `ne-tenants/v1` digest.
    pub digest: [u8; 32],
}

/// A rolling reply-stream checkpoint for one (tenant, service) pair:
/// the digest over the first `completions` replies in seq order.
/// Checkpoints let two timelines be compared incrementally — the first
/// diverging checkpoint brackets the first diverging reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Global tenant id.
    pub tenant: usize,
    /// Service index within the tenant.
    pub service: usize,
    /// Number of completions covered by this checkpoint.
    pub completions: u64,
    /// SHA-256 over those completions' replies in seq order.
    pub digest: [u8; 32],
}

/// A bounded, windowed timeline for one server — or, after
/// [`Timeline::fold`], for a whole cluster.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Window length in simulated cycles.
    pub window_cycles: u64,
    /// Ring capacity: at most this many windows are kept; older ones
    /// roll up into [`Timeline::base`].
    pub capacity: usize,
    /// Shard timelines folded into this one (1 for a plain timeline).
    pub shards: usize,
    /// SLO policy the rows were evaluated under.
    pub slo: SloPolicy,
    /// Reply-stream checkpoint stride used for [`Timeline::checkpoints`].
    pub checkpoint_every: u64,
    /// Roll-up of windows evicted from the ring, oldest first.
    pub base: Option<Window>,
    /// The retained windows, in index order.
    pub windows: Vec<Window>,
    /// Per-tenant end-of-run totals, sorted by global tenant id.
    pub totals: Vec<TenantTotal>,
    /// Reply-stream checkpoints, sorted by (tenant, service, count).
    pub checkpoints: Vec<Checkpoint>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new(
        window_cycles: u64,
        capacity: usize,
        slo: SloPolicy,
        checkpoint_every: u64,
    ) -> Timeline {
        Timeline {
            window_cycles,
            capacity: capacity.max(1),
            shards: 1,
            slo,
            checkpoint_every: checkpoint_every.max(1),
            base: None,
            windows: Vec::new(),
            totals: Vec::new(),
            checkpoints: Vec::new(),
        }
    }

    /// Appends a closed window, evicting the oldest into the base
    /// roll-up if the ring is full.
    pub fn push(&mut self, w: Window) {
        if self.windows.len() >= self.capacity {
            let old = self.windows.remove(0);
            match &mut self.base {
                None => self.base = Some(old),
                Some(b) => b.roll(&old),
            }
        }
        self.windows.push(w);
    }

    /// Raw (pre-roll-up) windows observed, including those folded into
    /// the base.
    pub fn raw_windows(&self) -> u64 {
        self.base.as_ref().map_or(0, |b| b.folded) + self.windows.len() as u64
    }

    /// All windows oldest-first, base roll-up included.
    pub fn all_windows(&self) -> impl Iterator<Item = &Window> {
        self.base.iter().chain(self.windows.iter())
    }

    /// The end-of-run totals of the whole timeline: summed cycles,
    /// stats, and the merged request histogram. Because windows are
    /// deltas of cumulative snapshots, these telescope back to the
    /// server's end-of-run counters exactly (by test).
    pub fn total(&self) -> (u64, Stats, Histogram) {
        let mut cycles = 0u64;
        let mut stats = Stats::default();
        let mut hist = Histogram::new();
        for w in self.all_windows() {
            cycles += w.cycles;
            stats.merge(&w.stats);
            hist.merge(&w.request());
        }
        (cycles, stats, hist)
    }

    /// Namespaces enclave ids for shard `shard`, mirroring
    /// [`ne_sgx::metrics::MachineMetrics::rebase_shard`] (shard 0 is
    /// untouched, so a 1-shard timeline stays byte-identical to the
    /// unsharded one).
    pub fn rebase_shard(&mut self, shard: usize) {
        let off = (shard as u64) << ne_sgx::metrics::SHARD_EID_BITS;
        for w in self.base.iter_mut().chain(self.windows.iter_mut()) {
            for inj in &mut w.injections {
                inj.eid += off;
            }
        }
    }

    /// Folds per-shard timelines into one cluster timeline, the
    /// windowed analogue of
    /// [`ne_sgx::metrics::MachineMetrics::merge_shards`]: windows with
    /// the same index merge via [`Window::merge_shard`], tenant totals
    /// and checkpoints union (global tenant ids are disjoint across
    /// shards). Folding a single timeline is the identity.
    pub fn fold(shards: &[Timeline]) -> Result<Timeline, String> {
        let first = shards.first().ok_or("fold of zero timelines")?;
        let mut out = Timeline::new(
            first.window_cycles,
            first.capacity,
            first.slo,
            first.checkpoint_every,
        );
        out.shards = 0;
        let mut windows: Vec<Window> = Vec::new();
        for t in shards {
            if t.window_cycles != first.window_cycles {
                return Err(format!(
                    "fold: window_cycles mismatch ({} vs {})",
                    t.window_cycles, first.window_cycles
                ));
            }
            if t.slo != first.slo {
                return Err("fold: SLO policy mismatch".into());
            }
            out.shards += t.shards;
            if let Some(b) = &t.base {
                match &mut out.base {
                    None => out.base = Some(b.clone()),
                    Some(acc) => {
                        acc.folded += b.folded;
                        acc.index = acc.index.min(b.index);
                        acc.accumulate(b, false);
                    }
                }
            }
            for w in &t.windows {
                match windows.iter_mut().find(|x| x.index == w.index) {
                    Some(acc) => acc.merge_shard(w),
                    None => windows.push(w.clone()),
                }
            }
            out.totals.extend(t.totals.iter().cloned());
            out.checkpoints.extend(t.checkpoints.iter().cloned());
        }
        windows.sort_by_key(|w| w.index);
        out.windows = windows;
        out.totals.sort_by_key(|t| t.tenant);
        for pair in out.totals.windows(2) {
            if pair[0].tenant == pair[1].tenant {
                return Err(format!("fold: tenant {} on two shards", pair[0].tenant));
            }
        }
        out.checkpoints
            .sort_by_key(|c| (c.tenant, c.service, c.completions));
        Ok(out)
    }
}
