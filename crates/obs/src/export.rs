//! The `ne-obs/v1` JSONL timeline export.
//!
//! One JSON object per line, hand-rolled with a fixed key order and
//! integer values only — the bytes are part of the crate's contract
//! (CI diffs two same-seed runs). Line kinds, in order:
//!
//! 1. the meta header (`"schema":"ne-obs/v1"`);
//! 2. the base roll-up window, if the ring overflowed (`"kind":"base"`);
//! 3. one line per retained window (`"kind":"window"`);
//! 4. reply-stream checkpoints (`"kind":"checkpoint"`) — the
//!    shard-count-invariant data plane, together with
//! 5. per-tenant totals (`"kind":"tenant_total"`);
//! 6. correlated incidents (`"kind":"incident"`);
//! 7. a final reconciliation line (`"kind":"total"`) whose sums equal
//!    the end-of-run machine counters exactly.

use ne_host::RecoveryEventKind;
use ne_sgx::profile::Histogram;
use ne_sgx::trace::Stats;

use crate::incident::{correlate, Incident};
use crate::window::{Timeline, Window};

/// Schema tag of the timeline export.
pub const OBS_SCHEMA: &str = "ne-obs/v1";

fn hex(digest: &[u8; 32]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn stats_json(s: &Stats) -> String {
    format!(
        "{{\"ecalls\":{},\"ocalls\":{},\"n_ecalls\":{},\"n_ocalls\":{},\"aexes\":{},\
         \"eresumes\":{},\"switchless_ocalls\":{},\"tlb_misses\":{},\"faults\":{},\
         \"ewb_pages\":{},\"eldu_pages\":{},\"ipis\":{},\"span_opens\":{},\"span_closes\":{}}}",
        s.ecalls,
        s.ocalls,
        s.n_ecalls,
        s.n_ocalls,
        s.aexes,
        s.eresumes,
        s.switchless_ocalls,
        s.tlb_misses,
        s.faults,
        s.ewb_pages,
        s.eldu_pages,
        s.ipis,
        s.span_opens,
        s.span_closes
    )
}

fn hist_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        h.percentile(0.50),
        h.percentile(0.90),
        h.percentile(0.99)
    )
}

fn window_json(w: &Window, kind: &str) -> String {
    let mut line = format!(
        "{{\"kind\":\"{kind}\",\"index\":{},\"folded\":{},\"cycles\":{},\"free_epc\":{},\
         \"resident\":{},\"degraded\":{},\"stats\":{},\"request\":{},\"tenants\":[",
        w.index,
        w.folded,
        w.cycles,
        w.free_epc,
        w.resident,
        w.degraded,
        stats_json(&w.stats),
        hist_json(&w.request())
    );
    for (i, t) in w.tenants.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!(
            "{{\"tenant\":{},\"accepted\":{},\"completed\":{},\"shed\":{},\"rejected\":{},\
             \"respawns\":{},\"breaker_open\":{},\"latency_violations\":{},\"latency\":{},\
             \"slo\":\"{}\",\"burn_short\":{},\"burn_long\":{}}}",
            t.tenant,
            t.accepted,
            t.completed,
            t.shed,
            t.rejected,
            t.respawns,
            t.breaker_open,
            t.latency_violations,
            hist_json(&t.latency),
            t.slo.name(),
            t.burn_short,
            t.burn_long
        ));
    }
    line.push_str("],\"injections\":[");
    for (i, inj) in w.injections.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let tenant = inj.tenant.map_or("null".to_string(), |t| t.to_string());
        line.push_str(&format!(
            "{{\"cycle\":{},\"eid\":{},\"tenant\":{tenant},\"kind\":\"{}\"}}",
            inj.cycle,
            inj.eid,
            inj.kind.name()
        ));
    }
    line.push_str("],\"recoveries\":[");
    for (i, ev) in w.recoveries.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let detail = match ev.kind {
            RecoveryEventKind::Backoff { wait } => format!(",\"wait\":{wait}"),
            RecoveryEventKind::Shed(reason) => format!(",\"reason\":\"{}\"", reason.name()),
            _ => String::new(),
        };
        line.push_str(&format!(
            "{{\"cycle\":{},\"tenant\":{},\"kind\":\"{}\"{detail}}}",
            ev.cycle,
            ev.tenant,
            ev.kind.name()
        ));
    }
    line.push_str("]}");
    line
}

fn incident_json(inc: &Incident) -> String {
    format!(
        "{{\"kind\":\"incident\",\"tenant\":{},\"first_window\":{},\"last_window\":{},\
         \"first_cycle\":{},\"injections\":{{\"aex\":{},\"evict\":{},\"mac\":{},\"crash\":{},\
         \"stall\":{}}},\"recoveries\":{{\"backoffs\":{},\"reloads\":{},\"respawns\":{},\
         \"sheds\":{},\"breaker_opened\":{}}},\"impacted_windows\":{},\"worst\":\"{}\"}}",
        inc.tenant,
        inc.first_window,
        inc.last_window,
        inc.first_cycle,
        inc.aex,
        inc.evict,
        inc.mac,
        inc.crash,
        inc.stall,
        inc.backoffs,
        inc.reloads,
        inc.respawns,
        inc.sheds,
        inc.breaker_opened,
        inc.impacted_windows,
        inc.worst.name()
    )
}

/// Serializes a timeline (plus its correlated incidents) as
/// `ne-obs/v1` JSONL. Byte-deterministic: same timeline, same bytes.
pub fn to_jsonl(t: &Timeline, label: &str) -> String {
    let mut out = String::new();
    let buckets = Histogram::new().summary().buckets;
    out.push_str(&format!(
        "{{\"schema\":\"{OBS_SCHEMA}\",\"label\":\"{}\",\"window_cycles\":{},\"windows\":{},\
         \"shards\":{},\"tenants\":{},\"hist_buckets\":{buckets},\"slo\":{{\
         \"latency_target\":{},\"availability_permille\":{},\"long_windows\":{},\
         \"warn_burn\":{},\"page_burn\":{}}}}}\n",
        escape(label),
        t.window_cycles,
        t.raw_windows(),
        t.shards,
        t.totals.len(),
        t.slo.latency_target,
        t.slo.availability_permille,
        t.slo.long_windows,
        t.slo.warn_burn,
        t.slo.page_burn
    ));
    if let Some(base) = &t.base {
        out.push_str(&window_json(base, "base"));
        out.push('\n');
    }
    for w in &t.windows {
        out.push_str(&window_json(w, "window"));
        out.push('\n');
    }
    for c in &t.checkpoints {
        out.push_str(&format!(
            "{{\"kind\":\"checkpoint\",\"tenant\":{},\"service\":{},\"completions\":{},\
             \"digest\":\"{}\"}}\n",
            c.tenant,
            c.service,
            c.completions,
            hex(&c.digest)
        ));
    }
    for tt in &t.totals {
        out.push_str(&format!(
            "{{\"kind\":\"tenant_total\",\"tenant\":{},\"accepted\":{},\"completed\":{},\
             \"shed\":{},\"rejected\":{},\"respawns\":{},\"replies\":\"sha256:{}\"}}\n",
            tt.tenant,
            tt.accepted,
            tt.completed,
            tt.shed,
            tt.rejected,
            tt.respawns,
            hex(&tt.digest)
        ));
    }
    for inc in &correlate(t) {
        out.push_str(&incident_json(inc));
        out.push('\n');
    }
    let (cycles, stats, request) = t.total();
    out.push_str(&format!(
        "{{\"kind\":\"total\",\"cycles\":{cycles},\"stats\":{},\"request\":{},\
         \"completed\":{},\"shed\":{}}}\n",
        stats_json(&stats),
        hist_json(&request),
        t.totals.iter().map(|x| x.completed).sum::<u64>(),
        t.totals.iter().map(|x| x.shed).sum::<u64>()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloPolicy;
    use crate::window::{TenantTotal, TenantWindow, Window};

    fn tiny() -> Timeline {
        let mut t = Timeline::new(1_000, 8, SloPolicy::default(), 4);
        let mut w = Window::new(0);
        let mut row = TenantWindow::new(0);
        row.completed = 2;
        row.latency.record(700);
        row.latency.record(900);
        w.tenants.push(row);
        w.cycles = 1_000;
        t.push(w);
        t.totals.push(TenantTotal {
            tenant: 0,
            accepted: 2,
            completed: 2,
            shed: 0,
            rejected: 0,
            respawns: 0,
            digest: [0u8; 32],
        });
        t
    }

    #[test]
    fn export_is_deterministic_and_schema_tagged() {
        let t = tiny();
        let a = to_jsonl(&t, "unit");
        let b = to_jsonl(&t, "unit");
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"ne-obs/v1\""));
        assert!(a.contains("\"kind\":\"window\""));
        assert!(a.contains("\"kind\":\"tenant_total\""));
        assert!(a.lines().last().unwrap().starts_with("{\"kind\":\"total\""));
        // Every line parses as a standalone JSON object (ne-profile
        // consumes it with the ne-bench parser).
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn fold_of_one_timeline_exports_identically() {
        let t = tiny();
        let folded = Timeline::fold(std::slice::from_ref(&t)).unwrap();
        assert_eq!(to_jsonl(&t, "x"), to_jsonl(&folded, "x"));
    }
}
