//! The incident correlator: joins chaos injections with the recovery
//! events and SLO impact they caused, per tenant, into structured
//! incident reports.
//!
//! An incident opens at the first window where a tenant's enclaves
//! take an injection, extends while injections, recovery events, or
//! SLO impact keep landing, and closes after one fully quiet window.
//! Correlation runs on a (possibly folded) [`Timeline`], so per-shard
//! and cluster-level reports agree.

use std::collections::BTreeMap;

use ne_host::RecoveryEventKind;
use ne_sgx::fault::ChaosKind;

use crate::slo::SloState;
use crate::window::{Timeline, Window};

/// One correlated incident for one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Global tenant id.
    pub tenant: usize,
    /// Window index where the first injection landed.
    pub first_window: u64,
    /// Last window with incident activity.
    pub last_window: u64,
    /// Cycle of the earliest injection in the incident.
    pub first_cycle: u64,
    /// AEX-storm injections.
    pub aex: u64,
    /// Page-eviction injections.
    pub evict: u64,
    /// MAC-corruption injections.
    pub mac: u64,
    /// Enclave-crash injections.
    pub crash: u64,
    /// Stall injections.
    pub stall: u64,
    /// Migration-trigger injections.
    pub migrate: u64,
    /// Retry backoffs taken.
    pub backoffs: u64,
    /// Chaos-evicted pages reloaded.
    pub reloads: u64,
    /// Enclaves respawned (gate, service, or whole tenant).
    pub respawns: u64,
    /// Live-migration phases executed (quiesce through resume/rollback).
    pub migrations: u64,
    /// Requests shed during the incident.
    pub sheds: u64,
    /// True if the tenant's circuit breaker opened.
    pub breaker_opened: bool,
    /// Windows inside the incident whose SLO state was not OK.
    pub impacted_windows: u64,
    /// Worst SLO state seen inside the incident.
    pub worst: SloState,
}

/// Per-window activity for one tenant, extracted for correlation.
struct Activity {
    aex: u64,
    evict: u64,
    mac: u64,
    crash: u64,
    stall: u64,
    migrate: u64,
    first_cycle: Option<u64>,
    backoffs: u64,
    reloads: u64,
    respawns: u64,
    migrations: u64,
    sheds: u64,
    breaker: bool,
    impact: Option<SloState>,
}

impl Activity {
    fn injections(&self) -> u64 {
        self.aex + self.evict + self.mac + self.crash + self.stall + self.migrate
    }

    fn any(&self) -> bool {
        self.injections() > 0
            || self.backoffs + self.reloads + self.respawns + self.migrations + self.sheds > 0
            || self.breaker
            || self.impact.is_some()
    }
}

fn activity(w: &Window, tenant: usize) -> Activity {
    let mut a = Activity {
        aex: 0,
        evict: 0,
        mac: 0,
        crash: 0,
        stall: 0,
        migrate: 0,
        first_cycle: None,
        backoffs: 0,
        reloads: 0,
        respawns: 0,
        migrations: 0,
        sheds: 0,
        breaker: false,
        impact: None,
    };
    for inj in w.injections.iter().filter(|i| i.tenant == Some(tenant)) {
        match inj.kind {
            ChaosKind::Aex => a.aex += 1,
            ChaosKind::Evict => a.evict += 1,
            ChaosKind::Mac => a.mac += 1,
            ChaosKind::Crash => a.crash += 1,
            ChaosKind::Stall => a.stall += 1,
            ChaosKind::Migrate => a.migrate += 1,
        }
        a.first_cycle = Some(a.first_cycle.map_or(inj.cycle, |c| c.min(inj.cycle)));
    }
    for ev in w.recoveries.iter().filter(|r| r.tenant == tenant) {
        match ev.kind {
            RecoveryEventKind::Backoff { .. } => a.backoffs += 1,
            RecoveryEventKind::Reload => a.reloads += 1,
            RecoveryEventKind::RespawnGate
            | RecoveryEventKind::RespawnService
            | RecoveryEventKind::RespawnTenant => a.respawns += 1,
            RecoveryEventKind::Migrate(_) => a.migrations += 1,
            RecoveryEventKind::BreakerOpen => a.breaker = true,
            RecoveryEventKind::Shed(_) => a.sheds += 1,
        }
    }
    if let Some(row) = w.tenants.iter().find(|r| r.tenant == tenant) {
        if row.slo != SloState::Ok {
            a.impact = Some(row.slo);
        }
    }
    a
}

/// Correlates a timeline into its incidents, sorted by (first window,
/// tenant). A clean run yields an empty vector.
pub fn correlate(t: &Timeline) -> Vec<Incident> {
    let mut tenants: Vec<usize> = t
        .all_windows()
        .flat_map(|w| w.tenants.iter().map(|r| r.tenant))
        .collect();
    tenants.sort_unstable();
    tenants.dedup();

    let mut open: BTreeMap<usize, Incident> = BTreeMap::new();
    let mut done: Vec<Incident> = Vec::new();
    for w in t.all_windows() {
        for &tenant in &tenants {
            let a = activity(w, tenant);
            match open.get_mut(&tenant) {
                Some(inc) => {
                    if a.any() {
                        extend(inc, w.index, &a);
                    } else {
                        // First fully quiet window closes the incident.
                        done.push(open.remove(&tenant).unwrap());
                    }
                }
                None => {
                    if a.injections() > 0 {
                        let mut inc = Incident {
                            tenant,
                            first_window: w.index,
                            last_window: w.index,
                            first_cycle: a.first_cycle.unwrap_or(0),
                            aex: 0,
                            evict: 0,
                            mac: 0,
                            crash: 0,
                            stall: 0,
                            migrate: 0,
                            backoffs: 0,
                            reloads: 0,
                            respawns: 0,
                            migrations: 0,
                            sheds: 0,
                            breaker_opened: false,
                            impacted_windows: 0,
                            worst: SloState::Ok,
                        };
                        extend(&mut inc, w.index, &a);
                        open.insert(tenant, inc);
                    }
                }
            }
        }
    }
    done.extend(open.into_values());
    done.sort_by_key(|i| (i.first_window, i.tenant));
    done
}

fn extend(inc: &mut Incident, window: u64, a: &Activity) {
    inc.last_window = window;
    inc.aex += a.aex;
    inc.evict += a.evict;
    inc.mac += a.mac;
    inc.crash += a.crash;
    inc.stall += a.stall;
    inc.migrate += a.migrate;
    inc.backoffs += a.backoffs;
    inc.reloads += a.reloads;
    inc.respawns += a.respawns;
    inc.migrations += a.migrations;
    inc.sheds += a.sheds;
    inc.breaker_opened |= a.breaker;
    if let Some(s) = a.impact {
        inc.impacted_windows += 1;
        inc.worst = inc.worst.max(s);
    }
}

/// Renders incidents as a human-readable report (the `--dash` footer
/// and the `ne-profile timeline` incident section).
pub fn render_incidents(incidents: &[Incident]) -> String {
    if incidents.is_empty() {
        return "no incidents\n".to_string();
    }
    let mut out = String::new();
    for inc in incidents {
        out.push_str(&format!(
            "incident tenant {}: windows {}..{} (first injection @ cycle {})\n",
            inc.tenant, inc.first_window, inc.last_window, inc.first_cycle
        ));
        let mut inj: Vec<String> = Vec::new();
        for (n, v) in [
            ("aex", inc.aex),
            ("evict", inc.evict),
            ("mac", inc.mac),
            ("crash", inc.crash),
            ("stall", inc.stall),
            ("migrate", inc.migrate),
        ] {
            if v > 0 {
                inj.push(format!("{n} {v}"));
            }
        }
        out.push_str(&format!("  injections: {}\n", inj.join(", ")));
        out.push_str(&format!(
            "  recovery:   backoffs {}, reloads {}, respawns {}, migrations {}, sheds {}{}\n",
            inc.backoffs,
            inc.reloads,
            inc.respawns,
            inc.migrations,
            inc.sheds,
            if inc.breaker_opened {
                ", breaker opened"
            } else {
                ""
            }
        ));
        out.push_str(&format!(
            "  slo:        {} impacted window{}, worst state {}\n",
            inc.impacted_windows,
            if inc.impacted_windows == 1 { "" } else { "s" },
            inc.worst.name().to_uppercase()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloPolicy;
    use crate::window::{Injection, Recovery, TenantWindow, Window};

    fn timeline(windows: Vec<Window>) -> Timeline {
        let mut t = Timeline::new(1_000, 1_024, SloPolicy::default(), 4);
        for w in windows {
            t.push(w);
        }
        t
    }

    fn quiet(index: u64, tenant: usize) -> Window {
        let mut w = Window::new(index);
        w.tenants.push(TenantWindow::new(tenant));
        w
    }

    #[test]
    fn clean_timeline_has_no_incidents() {
        let t = timeline(vec![quiet(0, 0), quiet(1, 0)]);
        assert!(correlate(&t).is_empty());
        assert_eq!(render_incidents(&[]), "no incidents\n");
    }

    #[test]
    fn injection_recovery_and_impact_join_into_one_incident() {
        let mut w0 = quiet(0, 0);
        w0.injections.push(Injection {
            cycle: 500,
            eid: 1,
            tenant: Some(0),
            kind: ChaosKind::Crash,
        });
        w0.recoveries.push(Recovery {
            cycle: 600,
            tenant: 0,
            kind: RecoveryEventKind::RespawnService,
        });
        let mut w1 = quiet(1, 0);
        w1.tenants[0].shed = 3;
        w1.tenants[0].slo = SloState::Page;
        w1.recoveries.push(Recovery {
            cycle: 1_100,
            tenant: 0,
            kind: RecoveryEventKind::Shed(ne_host::ShedReason::BreakerOpen),
        });
        // Window 2 is quiet: the incident closes there.
        let mut w3 = quiet(3, 0);
        w3.injections.push(Injection {
            cycle: 3_100,
            eid: 1,
            tenant: Some(0),
            kind: ChaosKind::Aex,
        });
        let t = timeline(vec![w0, w1, quiet(2, 0), w3]);
        let incidents = correlate(&t);
        assert_eq!(incidents.len(), 2);
        let first = &incidents[0];
        assert_eq!((first.first_window, first.last_window), (0, 1));
        assert_eq!(first.first_cycle, 500);
        assert_eq!(first.crash, 1);
        assert_eq!(first.respawns, 1);
        assert_eq!(first.sheds, 1);
        assert_eq!(first.impacted_windows, 1);
        assert_eq!(first.worst, SloState::Page);
        assert_eq!(incidents[1].first_window, 3);
        let report = render_incidents(&incidents);
        assert!(report.contains("incident tenant 0: windows 0..1"));
        assert!(report.contains("worst state PAGE"));
    }
}
