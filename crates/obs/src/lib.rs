#![deny(missing_docs)]

//! # ne-obs — the observability plane
//!
//! An epoch-windowed time-series layer over the simulated machine. All
//! timestamps are **simulated cycles** on the serving clock
//! ([`ne_host::HostServer::now`]) — never wall clock — so every export
//! is byte-deterministic: the same seed produces the same timeline,
//! byte for byte, on any machine.
//!
//! The moving parts:
//!
//! * [`sampler`] — a [`sampler::Sampler`] rides along a driving loop,
//!   observing a [`ne_host::HostServer`] after each step. Whenever the
//!   serving clock crosses a `window_cycles` boundary it closes a
//!   window: per-window **deltas** of the cumulative machine counters
//!   ([`ne_sgx::trace::Stats`], total cycles, degraded replies), gauges
//!   (free EPC pages, resident pages, per-tenant breaker state), fresh
//!   per-tenant latency histograms built from the window's completions,
//!   and the chaos injections and recovery events that landed in the
//!   window. Deltas of cumulative snapshots telescope, so summing the
//!   windows reproduces the end-of-run totals *exactly* (by test).
//! * [`window`] — the data model: [`window::Window`] /
//!   [`window::TenantWindow`] rows, the bounded [`window::Timeline`]
//!   ring (old windows roll up into a base window instead of growing
//!   without bound), and the shard fold algebra
//!   ([`window::Timeline::fold`]) mirroring
//!   [`ne_sgx::metrics::MachineMetrics::merge_shards`]: per-shard
//!   timelines fold into one cluster timeline, and folding a single
//!   shard is the identity.
//! * [`slo`] — integer-permille SLO policy and the multi-window
//!   burn-rate monitor (OK / WARN / PAGE per tenant per window).
//! * [`incident`] — the correlator joining [`ne_sgx::fault`] chaos
//!   injections with the recovery events and SLO impact they caused,
//!   exported as structured incident reports.
//! * [`export`] — the `ne-obs/v1` JSONL timeline export (fixed key
//!   order, integers only, hand-rolled — byte-stable by construction).
//! * [`dash`] — a deterministic post-run text dashboard: one frame per
//!   window, replayed from the timeline.
//!
//! `ne-load --timeline-out` / `--dash` and `ne-wallclock
//! --timeline-out` (in `ne-bench`) drive this; `ne-profile timeline`
//! pretty-prints the export.

pub mod dash;
pub mod export;
pub mod incident;
pub mod sampler;
pub mod slo;
pub mod window;

pub use export::{to_jsonl, OBS_SCHEMA};
pub use incident::{correlate, render_incidents, Incident};
pub use sampler::{Sampler, SamplerConfig, TenantCarry};
pub use slo::{SloPolicy, SloState};
pub use window::{Checkpoint, Injection, Recovery, TenantTotal, TenantWindow, Timeline, Window};
