//! The observability plane's exactness oracles, against a real server:
//!
//! * **reconciliation** — summing the per-window deltas of a timeline
//!   reproduces the end-of-run machine counters *exactly* (cycles,
//!   every transition counter, and the full request-latency histogram
//!   including min/max — windows are deltas of cumulative snapshots,
//!   so the sums telescope);
//! * **determinism** — same seed, same flags ⇒ byte-identical
//!   `ne-obs/v1` export;
//! * **incidents** — a chaos run must produce a non-empty, structured
//!   incident report joining injections with recovery events.

use ne_host::{HostConfig, HostServer, RequestFactory, ServiceKind, TenantSpec};
use ne_obs::{correlate, to_jsonl, Sampler, SamplerConfig, SloState, Timeline};
use ne_sgx::fault::FaultPlan;
use ne_sgx::profile::ProfileEvent;
use proptest::prelude::*;

/// Builds the `ne-load` tenant population and serves `requests` per
/// (tenant, service) through a closed loop with a sampler riding
/// along. Returns the drained server and its finished timeline.
fn run_closed_loop(
    tenants: usize,
    services: usize,
    requests: usize,
    seed: u64,
    chaos: Option<&str>,
    window_cycles: u64,
) -> (HostServer, Timeline) {
    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|i| {
            let kinds: Vec<ServiceKind> = (0..services)
                .map(|s| ServiceKind::ALL[s % ServiceKind::ALL.len()])
                .collect();
            TenantSpec::new(&format!("tenant{i}"), (tenants - i) as u8, kinds)
        })
        .collect();
    let mut cfg = HostConfig::new(specs);
    cfg.seed = seed;
    let mut server = HostServer::build(cfg).expect("host build");
    let mut factories: Vec<Vec<RequestFactory>> = (0..tenants)
        .map(|t| {
            (0..services)
                .map(|s| RequestFactory::new(ServiceKind::ALL[s % ServiceKind::ALL.len()], t, seed))
                .collect()
        })
        .collect();
    for (t, tenant_factories) in factories.iter_mut().enumerate() {
        for (s, factory) in tenant_factories.iter_mut().enumerate() {
            for _ in 0..factory.setup_requests().max(1) {
                let payload = factory.next_request();
                assert!(server.submit(t, s, server.now(), payload).is_accepted());
                server.step().expect("warmup step");
            }
        }
    }
    server.drain().expect("warmup drain");
    server.reset_measurement();
    if let Some(spec) = chaos {
        let plan = FaultPlan::parse(spec, seed ^ 0xC4A0_5EED).expect("chaos spec");
        server.install_chaos(plan);
    }
    let mut sampler = Sampler::new(
        &server,
        (0..tenants).collect(),
        SamplerConfig {
            window_cycles,
            ..SamplerConfig::default()
        },
    );
    let mut remaining = vec![vec![requests; services]; tenants];
    for t in 0..tenants {
        for s in 0..services {
            if remaining[t][s] > 0 {
                remaining[t][s] -= 1;
                let payload = factories[t][s].next_request();
                if !server.submit(t, s, 0, payload).is_accepted() {
                    remaining[t][s] = 0;
                }
            }
        }
    }
    while server.pending() > 0 {
        let stepped = server.step().expect("closed-loop step");
        sampler.poll(&server);
        let Some(c) = stepped else {
            continue;
        };
        if remaining[c.tenant][c.service] > 0 {
            remaining[c.tenant][c.service] -= 1;
            let payload = factories[c.tenant][c.service].next_request();
            if !server
                .submit(c.tenant, c.service, c.end, payload)
                .is_accepted()
            {
                remaining[c.tenant][c.service] = 0;
            }
        }
    }
    server.drain().expect("drain");
    let timeline = sampler.finish(&server);
    (server, timeline)
}

/// Asserts every reconciliation identity between a timeline and the
/// server it observed.
fn assert_reconciles(server: &HostServer, timeline: &Timeline) {
    let machine = &server.app.machine;
    let (cycles, stats, request) = timeline.total();
    assert_eq!(
        cycles,
        machine.total_cycles(),
        "window cycles must telescope"
    );
    assert_eq!(stats, machine.stats(), "window stats deltas must telescope");
    // The full histogram — bucket vector, count, sum, min, max — not
    // just summary percentiles.
    assert_eq!(
        request,
        machine.profile().merged(ProfileEvent::Request),
        "window latency histograms must reconcile with the profile"
    );
    for (l, t) in server.tenants().iter().enumerate() {
        let completed: u64 = timeline
            .all_windows()
            .filter_map(|w| w.tenants.iter().find(|r| r.tenant == l))
            .map(|r| r.completed)
            .sum();
        assert_eq!(
            completed, t.completed,
            "tenant {l} completed must telescope"
        );
        let shed: u64 = timeline
            .all_windows()
            .filter_map(|w| w.tenants.iter().find(|r| r.tenant == l))
            .map(|r| r.shed)
            .sum();
        assert_eq!(shed, t.shed_requests, "tenant {l} shed must telescope");
        let total = &timeline.totals[l];
        assert_eq!(
            (total.accepted, total.completed, total.shed),
            (t.accepted, t.completed, t.shed_requests),
            "tenant {l} totals line must match the server counters"
        );
    }
}

#[test]
fn clean_run_reconciles_exactly() {
    let (server, timeline) = run_closed_loop(4, 2, 6, 7, None, 2_000_000);
    assert!(timeline.raw_windows() > 0);
    assert_reconciles(&server, &timeline);
    // A clean run correlates to zero incidents.
    assert!(correlate(&timeline).is_empty());
}

#[test]
fn tiny_windows_still_reconcile() {
    // Hundreds of small windows: boundary crossings in mid-flight, empty
    // windows, multi-boundary jumps — the deltas must still telescope.
    let (server, timeline) = run_closed_loop(2, 2, 4, 11, None, 50_000);
    assert!(
        timeline.raw_windows() > 20,
        "want many windows for this oracle"
    );
    assert_reconciles(&server, &timeline);
}

#[test]
fn chaos_run_reconciles_and_reports_an_incident() {
    let (server, timeline) = run_closed_loop(4, 2, 8, 7, Some("aex+evict+crash:7"), 2_000_000);
    assert_reconciles(&server, &timeline);
    let incidents = correlate(&timeline);
    assert!(
        !incidents.is_empty(),
        "a chaos run must produce an incident report"
    );
    let inj: u64 = incidents
        .iter()
        .map(|i| i.aex + i.evict + i.mac + i.crash + i.stall)
        .sum();
    assert!(inj > 0, "incidents must carry their injections");
    let recov: u64 = incidents
        .iter()
        .map(|i| i.backoffs + i.reloads + i.respawns + i.sheds)
        .sum();
    assert!(recov > 0, "incidents must join recovery events");
    assert!(
        incidents.iter().any(|i| i.worst != SloState::Ok),
        "this chaos load must show SLO impact"
    );
    let report = ne_obs::render_incidents(&incidents);
    assert!(report.contains("incident tenant"));
}

#[test]
fn export_is_byte_deterministic_across_runs() {
    let (_, a) = run_closed_loop(3, 2, 6, 42, Some("aex+evict"), 1_000_000);
    let (_, b) = run_closed_loop(3, 2, 6, 42, Some("aex+evict"), 1_000_000);
    assert_eq!(to_jsonl(&a, "det"), to_jsonl(&b, "det"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for any small scenario shape, seed, and window size,
    /// the per-window deltas sum back to the end-of-run counters
    /// exactly — clean or chaotic.
    #[test]
    fn window_deltas_always_telescope(
        tenants in 1usize..4,
        services in 1usize..3,
        requests in 1usize..5,
        seed in 0u64..1_000,
        window_kcycles in 1u64..4_000,
        chaos in any::<bool>(),
    ) {
        let spec = chaos.then_some("aex:3+evict:4");
        let (server, timeline) =
            run_closed_loop(tenants, services, requests, seed, spec, window_kcycles * 1_000);
        assert_reconciles(&server, &timeline);
    }
}
