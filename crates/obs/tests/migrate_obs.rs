//! Observability across a live tenant migration, on a single server:
//! the sampler's retire/adopt protocol must keep every exactness
//! oracle intact while a tenant moves from one local slot to another.
//!
//! * **one totals line per global tenant** — the retired slot stops
//!   exporting; the adopted slot's totals cover the full carried
//!   history, byte-identical to a run that never migrated;
//! * **window deltas still telescope** — the migration-gap increments
//!   ride the [`TenantCarry`] into the adopted slot's first window,
//!   and each completion is latency-attributed exactly once (carried
//!   copies are skipped);
//! * **determinism** — the migrated run's `ne-obs/v1` export is
//!   byte-identical across repeats.

use ne_host::{HostConfig, HostServer, RequestFactory, ServiceKind, TenantSpec};
use ne_obs::{to_jsonl, Sampler, SamplerConfig, Timeline};

const TENANTS: usize = 3;
const SERVICES: usize = 2;
const WINDOW: u64 = 400_000;

fn build() -> (HostServer, Vec<Vec<RequestFactory>>) {
    let specs: Vec<TenantSpec> = (0..TENANTS)
        .map(|i| {
            let kinds: Vec<ServiceKind> = (0..SERVICES)
                .map(|s| ServiceKind::ALL[s % ServiceKind::ALL.len()])
                .collect();
            TenantSpec::new(&format!("tenant{i}"), (TENANTS - i) as u8, kinds)
        })
        .collect();
    let mut cfg = HostConfig::new(specs);
    cfg.seed = 7;
    let mut server = HostServer::build(cfg).expect("host build");
    let mut factories: Vec<Vec<RequestFactory>> = (0..TENANTS)
        .map(|t| {
            (0..SERVICES)
                .map(|s| RequestFactory::new(ServiceKind::ALL[s % ServiceKind::ALL.len()], t, 7))
                .collect()
        })
        .collect();
    for (t, tf) in factories.iter_mut().enumerate() {
        for (s, f) in tf.iter_mut().enumerate() {
            for _ in 0..f.setup_requests().max(1) {
                let payload = f.next_request();
                assert!(server.submit(t, s, server.now(), payload).is_accepted());
                server.step().expect("warmup step");
            }
        }
    }
    server.drain().expect("warmup drain");
    server.reset_measurement();
    (server, factories)
}

/// Submits `n` requests per (tenant, service) at the tenants' current
/// local slots, then steps the server dry with the sampler riding.
fn segment(
    server: &mut HostServer,
    sampler: &mut Sampler,
    factories: &mut [Vec<RequestFactory>],
    local_of: &[usize],
    n: usize,
) {
    for (g, tf) in factories.iter_mut().enumerate() {
        for (s, f) in tf.iter_mut().enumerate() {
            for _ in 0..n {
                let payload = f.next_request();
                assert!(
                    server
                        .submit(local_of[g], s, server.now(), payload)
                        .is_accepted(),
                    "segment submit must be accepted"
                );
            }
        }
    }
    while server.pending() > 0 {
        server.step().expect("segment step");
        sampler.poll(server);
    }
    server.drain().expect("segment drain");
    sampler.poll(server);
}

/// Two segments with an optional migration of global tenant 1 between
/// them. The migration happens with segment B's requests for tenant 1
/// already queued, so they ride the park buffer through the move.
fn run(migrate: bool) -> (HostServer, Timeline) {
    let (mut server, mut factories) = build();
    let mut sampler = Sampler::new(
        &server,
        (0..TENANTS).collect(),
        SamplerConfig {
            window_cycles: WINDOW,
            ..SamplerConfig::default()
        },
    );
    let mut local_of: Vec<usize> = (0..TENANTS).collect();
    segment(&mut server, &mut sampler, &mut factories, &local_of, 3);

    if migrate {
        // Queue tenant 1's next batch first so the quiesce parks it.
        for (s, f) in factories[1].iter_mut().enumerate() {
            for _ in 0..3 {
                let payload = f.next_request();
                assert!(server
                    .submit(local_of[1], s, server.now(), payload)
                    .is_accepted());
            }
        }
        let snap = server.extract_tenant(local_of[1]).expect("extract");
        assert_eq!(snap.parked.len(), 3 * SERVICES, "quiesce parks the queue");
        let carry = sampler.retire_tenant(1);
        let local = server
            .adopt_tenant(&snap, snap.seal_counter)
            .expect("adopt");
        sampler.adopt_tenant(&server, 1, carry);
        local_of[1] = local;
        // Drain the parked requests the adoption re-queued.
        while server.pending() > 0 {
            server.step().expect("post-adopt step");
            sampler.poll(&server);
        }
        server.drain().expect("post-adopt drain");
        // Tenant 1's queued batch already ran; the others catch up.
        for (g, tf) in factories.iter_mut().enumerate() {
            if g == 1 {
                continue;
            }
            for (s, f) in tf.iter_mut().enumerate() {
                for _ in 0..3 {
                    let payload = f.next_request();
                    assert!(server
                        .submit(local_of[g], s, server.now(), payload)
                        .is_accepted());
                }
            }
        }
        while server.pending() > 0 {
            server.step().expect("catch-up step");
            sampler.poll(&server);
        }
        server.drain().expect("catch-up drain");
        segment(&mut server, &mut sampler, &mut factories, &local_of, 2);
    } else {
        segment(&mut server, &mut sampler, &mut factories, &local_of, 3);
        segment(&mut server, &mut sampler, &mut factories, &local_of, 2);
    }

    let timeline = sampler.finish(&server);
    (server, timeline)
}

#[test]
fn migrated_run_exports_one_totals_line_per_tenant() {
    let (server, timeline) = run(true);
    let ids: Vec<usize> = timeline.totals.iter().map(|t| t.tenant).collect();
    assert_eq!(
        ids,
        vec![0, 1, 2],
        "exactly one totals line per global tenant"
    );
    // The adopted slot owns tenant 1's full history.
    let adopted = &server.tenants()[TENANTS]; // first slot past the originals
    assert_eq!(timeline.totals[1].completed, adopted.completed);
    assert_eq!(timeline.totals[1].accepted, adopted.accepted);
    assert_eq!(
        timeline.totals[1].shed, 0,
        "no request shed by a clean migration"
    );
    assert_eq!(
        timeline.totals[1].accepted, timeline.totals[1].completed,
        "zero dropped: every accepted request completed"
    );
}

#[test]
fn migrated_totals_match_an_unmigrated_run_byte_for_byte() {
    let (_, migrated) = run(true);
    let (_, control) = run(false);
    for (m, c) in migrated.totals.iter().zip(&control.totals) {
        assert_eq!(m.tenant, c.tenant);
        assert_eq!(
            m.digest, c.digest,
            "tenant {} reply digest must survive migration",
            m.tenant
        );
        assert_eq!(
            (m.accepted, m.completed, m.shed),
            (c.accepted, c.completed, c.shed),
            "tenant {} traffic counters must survive migration",
            m.tenant
        );
    }
    assert_eq!(migrated.checkpoints, control.checkpoints);
}

#[test]
fn window_deltas_telescope_across_the_migration() {
    let (_, timeline) = run(true);
    for total in &timeline.totals {
        let g = total.tenant;
        let completed: u64 = timeline
            .all_windows()
            .flat_map(|w| w.tenants.iter().filter(|r| r.tenant == g))
            .map(|r| r.completed)
            .sum();
        assert_eq!(
            completed, total.completed,
            "tenant {g} completed must telescope"
        );
        let accepted: u64 = timeline
            .all_windows()
            .flat_map(|w| w.tenants.iter().filter(|r| r.tenant == g))
            .map(|r| r.accepted)
            .sum();
        assert_eq!(
            accepted, total.accepted,
            "tenant {g} accepted must telescope"
        );
        // Each completion is latency-attributed exactly once: carried
        // copies are excluded, originals are counted where they ran.
        let samples: u64 = timeline
            .all_windows()
            .flat_map(|w| w.tenants.iter().filter(|r| r.tenant == g))
            .map(|r| r.latency.count())
            .sum();
        assert_eq!(
            samples, total.completed,
            "tenant {g} latency samples = completions"
        );
    }
    // No window carries two rows for the same tenant (coalesced).
    for w in timeline.all_windows() {
        for pair in w.tenants.windows(2) {
            assert!(
                pair[0].tenant < pair[1].tenant,
                "window rows strictly sorted"
            );
        }
    }
}

#[test]
fn migrated_export_is_byte_deterministic() {
    let (_, a) = run(true);
    let (_, b) = run(true);
    assert_eq!(to_jsonl(&a, "migrate"), to_jsonl(&b, "migrate"));
}

#[test]
fn migration_phases_appear_as_recovery_events() {
    let (_, timeline) = run(true);
    let kinds: Vec<&str> = timeline
        .all_windows()
        .flat_map(|w| w.recoveries.iter())
        .filter(|r| r.tenant == 1)
        .map(|r| r.kind.name())
        .collect();
    for phase in [
        "migrate_quiesce",
        "migrate_seal",
        "migrate_remove",
        "migrate_rebuild",
        "migrate_resume",
    ] {
        assert!(
            kinds.contains(&phase),
            "missing recovery event {phase}: {kinds:?}"
        );
    }
}
