//! NEREPORT hardening: property tests of the admission gate over random
//! enclave trees. Whatever the topology, the § IV-E chain must hold —
//! a genuine (gate, inner) pair always admits, and every forgery the
//! untrusted host could attempt (MAC flips, relation-list tampering and
//! reordering, reports targeted elsewhere, non-associated reporters) is
//! refused with a typed [`AttestError`], never admitted and never a
//! panic.

use ne_core::edl::Edl;
use ne_core::lifecycle::{admit_report, attest_chain, collect_report, AttestError};
use ne_core::loader::EnclaveImage;
use ne_core::report::{Relation, RelationRecord};
use ne_core::runtime::NestedApp;
use ne_sgx::config::HwConfig;
use proptest::prelude::*;

/// A random forest: `fanout[g]` inner enclaves under gate `g`. Returns
/// the app plus (gate name, inner names) per tree.
fn build_forest(fanout: &[usize]) -> (NestedApp, Vec<(String, Vec<String>)>) {
    let mut app = NestedApp::new(HwConfig::small());
    let mut forest = Vec::new();
    for (g, &n) in fanout.iter().enumerate() {
        let gate = format!("gate{g}");
        app.load(
            EnclaveImage::new(&gate, format!("signer{g}").as_bytes())
                .heap_pages(2)
                .edl(Edl::new()),
            [],
        )
        .expect("load gate");
        let mut inners = Vec::new();
        for i in 0..n {
            let inner = format!("inner{g}x{i}");
            app.load(
                EnclaveImage::new(&inner, format!("tenant{g}x{i}").as_bytes())
                    .heap_pages(2)
                    .edl(Edl::new()),
                [],
            )
            .expect("load inner");
            app.associate(&inner, &gate).expect("associate");
            inners.push(inner);
        }
        forest.push((gate, inners));
    }
    (app, forest)
}

fn pick(names: &[(String, Vec<String>)], gate: usize, inner: usize) -> (&str, &str) {
    let (g, inners) = &names[gate % names.len()];
    (g.as_str(), inners[inner % inners.len()].as_str())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every genuine (gate, inner) pair in a random forest admits, and
    /// the verified report's relation list names that gate as an outer.
    #[test]
    fn genuine_pairs_admit_everywhere(
        fanout in prop::collection::vec(1usize..4, 1..4),
        nonce_seed in any::<u8>(),
    ) {
        let (mut app, forest) = build_forest(&fanout);
        let nonce = [nonce_seed; 32];
        for (gate, inners) in &forest {
            for inner in inners {
                let report = attest_chain(&mut app, 0, gate, inner, &nonce)
                    .expect("genuine pair must admit");
                prop_assert!(report
                    .relations
                    .iter()
                    .any(|r| r.relation == Relation::Outer));
            }
        }
    }

    /// A report from an inner enclave that is NOT associated with the
    /// verifying gate is refused: the MAC verifies (the report was
    /// genuinely targeted at this gate) but the relation list cannot
    /// name it, so the refusal is the typed `NotAssociated`.
    #[test]
    fn non_associated_reporter_is_refused(
        fanout in prop::collection::vec(1usize..4, 2..4),
        ga in any::<u8>(),
        gb in any::<u8>(),
        inner_ix in any::<u8>(),
    ) {
        let (mut app, forest) = build_forest(&fanout);
        let ga = ga as usize % forest.len();
        let mut gb = gb as usize % forest.len();
        if gb == ga {
            gb = (gb + 1) % forest.len();
        }
        let gate = forest[ga].0.as_str();
        let (_, stranger) = pick(&forest, gb, inner_ix as usize);
        let nonce = [3u8; 32];
        let report = collect_report(&mut app, 0, stranger, gate, &nonce)
            .expect("any enclave may target a report");
        prop_assert_eq!(
            admit_report(&mut app, 0, gate, stranger, &nonce, &report),
            Err(AttestError::NotAssociated)
        );
    }

    /// A report targeted at some other enclave never verifies at the
    /// gate, whatever the tree looks like: report keys are
    /// per-(target, machine), so the gate's key refuses the MAC.
    #[test]
    fn report_for_another_target_is_refused(
        fanout in prop::collection::vec(1usize..4, 1..4),
        gate_ix in any::<u8>(),
        inner_ix in any::<u8>(),
    ) {
        let (mut app, forest) = build_forest(&fanout);
        let (gate, inner) = pick(&forest, gate_ix as usize, inner_ix as usize);
        let nonce = [5u8; 32];
        // Targeted at itself instead of the gate.
        let misdirected = collect_report(&mut app, 0, inner, inner, &nonce).unwrap();
        prop_assert_eq!(
            admit_report(&mut app, 0, gate, inner, &nonce, &misdirected),
            Err(AttestError::BadMac)
        );
    }

    /// Any single bit flip in the MAC, the measurement, the signer, or
    /// the echoed nonce is refused (MAC forgery / tamper).
    #[test]
    fn bit_flips_anywhere_are_refused(
        fanout in prop::collection::vec(1usize..4, 1..4),
        gate_ix in any::<u8>(),
        inner_ix in any::<u8>(),
        field in 0usize..4,
        byte in any::<u8>(),
        bit in 0u32..8,
    ) {
        let (mut app, forest) = build_forest(&fanout);
        let (gate, inner) = pick(&forest, gate_ix as usize, inner_ix as usize);
        let nonce = [7u8; 32];
        let report = collect_report(&mut app, 0, inner, gate, &nonce).unwrap();
        let mut forged = report.clone();
        let flip = 1u8 << bit;
        match field {
            0 => forged.mac[byte as usize % forged.mac.len()] ^= flip,
            1 => forged.mrenclave[byte as usize % forged.mrenclave.len()] ^= flip,
            2 => forged.mrsigner[byte as usize % forged.mrsigner.len()] ^= flip,
            _ => forged.report_data[byte as usize % forged.report_data.len()] ^= flip,
        }
        let verdict = admit_report(&mut app, 0, gate, inner, &nonce, &forged);
        prop_assert!(
            matches!(
                verdict,
                Err(AttestError::BadMac) | Err(AttestError::Freshness)
            ),
            "forged report admitted or odd refusal: {:?}", verdict
        );
    }

    /// Any tampering of the relation list — reordering, deletion,
    /// record corruption, role flips, or injecting a forged record that
    /// names the gate — is refused. The relations are inside the MACed
    /// body, so reordering alone must already break verification.
    #[test]
    fn relation_list_tamper_is_refused(
        fanout in prop::collection::vec(1usize..4, 1..4),
        gate_ix in any::<u8>(),
        inner_ix in any::<u8>(),
        mutation in 0usize..4,
        byte in any::<u8>(),
    ) {
        let (mut app, forest) = build_forest(&fanout);
        let (gate, inner) = pick(&forest, gate_ix as usize, inner_ix as usize);
        let nonce = [11u8; 32];
        let report = collect_report(&mut app, 0, inner, gate, &nonce).unwrap();
        prop_assert!(!report.relations.is_empty(), "associated inner must report a relation");
        let mut forged = report.clone();
        match mutation {
            // Reorder: move a fresh (distinct) record in front, so the
            // list order changes even when it had one entry.
            0 => {
                let mut decoy = forged.relations[0].clone();
                decoy.mrenclave[0] ^= 0xFF;
                forged.relations.insert(0, decoy);
            }
            // Delete the association evidence entirely.
            1 => forged.relations.clear(),
            // Corrupt the related measurement in place.
            2 => {
                let r = &mut forged.relations[0];
                r.mrenclave[byte as usize % r.mrenclave.len()] ^= 1;
            }
            // Inject a forged "outer" record claiming the gate — the
            // classic association forgery. Build it from the gate's
            // real live identity.
            _ => {
                let eid = app.eid(gate).unwrap();
                let secs = app.machine.enclaves().get(eid).unwrap();
                let (mr, signer) = (secs.mrenclave, secs.mrsigner);
                forged.relations.push(RelationRecord {
                    relation: Relation::Outer,
                    mrenclave: mr,
                    mrsigner: signer,
                });
            }
        }
        prop_assert_eq!(
            admit_report(&mut app, 0, gate, inner, &nonce, &forged),
            Err(AttestError::BadMac)
        );
    }
}
