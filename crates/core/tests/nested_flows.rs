//! Interrupt, scheduling, and life-cycle flows specific to nested
//! enclaves: AEX inside inner enclaves, ERESUME back into chains, TCS
//! contention between n_ocall call paths, and teardown ordering.

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::NestedApp;
use ne_core::transitions::{neenter, neexit};
use ne_sgx::config::HwConfig;
use ne_sgx::error::SgxError;

fn topology() -> NestedApp {
    let mut app = NestedApp::new(HwConfig::small());
    app.load(
        EnclaveImage::new("outer", b"provider")
            .heap_pages(4)
            .edl(Edl::new()),
        [],
    )
    .unwrap();
    for n in ["a", "b"] {
        app.load(
            EnclaveImage::new(n, b"tenant")
                .heap_pages(2)
                .edl(Edl::new()),
            [],
        )
        .unwrap();
        app.associate(n, "outer").unwrap();
    }
    app
}

/// An interrupt in an inner enclave: AEX scrubs, ERESUME restores, and
/// the NEEXIT return path still works afterwards.
#[test]
fn aex_inside_inner_then_resume_and_return() {
    let mut app = topology();
    let outer = app.layout("outer").unwrap();
    let a = app.layout("a").unwrap();
    app.machine.eenter(0, outer.eid, outer.base).unwrap();
    neenter(&mut app.machine, 0, a.eid, a.base).unwrap();
    app.machine.set_reg(0, 2, 0xABCD);
    app.machine.aex(0).unwrap();
    assert_eq!(app.machine.current_enclave(0), None);
    assert_eq!(app.machine.reg(0, 2), 0, "AEX scrubs");
    app.machine.eresume(0, a.eid, a.base).unwrap();
    assert_eq!(app.machine.current_enclave(0), Some(a.eid));
    assert_eq!(app.machine.reg(0, 2), 0xABCD, "ERESUME restores");
    // The NEENTER caller link survived the interrupt round trip.
    neexit(&mut app.machine, 0).unwrap();
    assert_eq!(app.machine.current_enclave(0), Some(outer.eid));
    app.machine.eexit(0).unwrap();
}

/// Two cores perform n_ocall call paths into the same outer concurrently:
/// each acquires a distinct outer TCS; a third contender is refused until
/// one returns.
#[test]
fn n_ocall_call_paths_contend_for_outer_tcs() {
    let mut app = NestedApp::new(HwConfig::small());
    // Outer with TWO TCSes: the image gives one; add a second manually.
    app.load(
        EnclaveImage::new("outer", b"provider")
            .heap_pages(4)
            .edl(Edl::new()),
        [],
    )
    .unwrap();
    for n in ["a", "b", "c"] {
        app.load(
            EnclaveImage::new(n, b"tenant")
                .heap_pages(2)
                .edl(Edl::new()),
            [],
        )
        .unwrap();
        app.associate(n, "outer").unwrap();
    }
    // Give the outer a second thread slot: impossible post-EINIT in this
    // model, so instead occupy the single slot and verify contention.
    let slots: Vec<_> = ["a", "b", "c"]
        .iter()
        .map(|n| app.layout(n).unwrap())
        .collect();
    // Core 0: inner a enters outer via the call path, holding the TCS.
    app.machine.eenter(0, slots[0].eid, slots[0].base).unwrap();
    neexit(&mut app.machine, 0).unwrap();
    // Core 1: inner b tries the same; the outer's only TCS is busy.
    app.machine.eenter(1, slots[1].eid, slots[1].base).unwrap();
    let err = neexit(&mut app.machine, 1).unwrap_err();
    assert!(matches!(err, SgxError::GeneralProtection(_)));
    // Core 0 returns; now core 1 succeeds.
    let a = slots[0].clone();
    neenter(&mut app.machine, 0, a.eid, a.base).unwrap();
    neexit(&mut app.machine, 1).unwrap();
    assert_eq!(
        app.machine.current_enclave(1),
        Some(app.eid("outer").unwrap())
    );
}

/// EREMOVE ordering: an outer enclave with live inner threads cannot be
/// torn down through them; after everything exits, teardown succeeds and
/// severs the associations.
#[test]
fn teardown_ordering_respects_activity() {
    let mut app = topology();
    let outer = app.layout("outer").unwrap();
    let a = app.layout("a").unwrap();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    // Inner 'a' is running: removing it must fail.
    let err = app.machine.eremove(a.eid).unwrap_err();
    assert!(matches!(err, SgxError::BadEnclaveState(_)));
    // The call path into the outer makes the outer active too.
    neexit(&mut app.machine, 0).unwrap();
    let err = app.machine.eremove(outer.eid).unwrap_err();
    assert!(matches!(err, SgxError::BadEnclaveState(_)));
    // Unwind everything; now teardown works.
    neenter(&mut app.machine, 0, a.eid, a.base).unwrap();
    app.machine.eexit(0).unwrap();
    app.machine.eremove(outer.eid).unwrap();
    assert!(
        app.machine
            .enclaves()
            .get(a.eid)
            .unwrap()
            .outer_eids
            .is_empty(),
        "association severed"
    );
    // The orphaned ex-inner still runs standalone.
    app.machine.eenter(0, a.eid, a.base).unwrap();
    app.machine.write(0, a.heap_base, b"still alive").unwrap();
    app.machine.eexit(0).unwrap();
    app.machine.audit_epcm().unwrap();
}

/// Regression: an outer that entered via an inner's n_ocall call path and
/// then took an AEX has zero active threads, yet its TCS is busy and its
/// caller link points at the suspended inner. EREMOVE in that window must
/// fail cleanly — tearing the outer down here used to orphan the inner's
/// saved context mid-call — and the whole chain must still unwind.
#[test]
fn eremove_rejects_aexed_outer_with_suspended_caller() {
    let mut app = topology();
    let outer = app.layout("outer").unwrap();
    let a = app.layout("a").unwrap();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    // Call path into the outer: a's context suspends, outer TCS acquired.
    neexit(&mut app.machine, 0).unwrap();
    // Interrupt the outer: active_threads drops to 0, TCS stays busy.
    app.machine.aex(0).unwrap();
    assert_eq!(
        app.machine
            .enclaves()
            .get(outer.eid)
            .unwrap()
            .active_threads,
        0
    );
    let err = app.machine.eremove(outer.eid).unwrap_err();
    assert!(matches!(err, SgxError::BadEnclaveState(_)), "got {err}");
    app.machine.audit_epcm().unwrap();
    // Resume the outer, return into the inner, and unwind everything.
    app.machine.eresume(0, outer.eid, outer.base).unwrap();
    neenter(&mut app.machine, 0, a.eid, a.base).unwrap();
    app.machine.eexit(0).unwrap();
    app.machine.eremove(outer.eid).unwrap();
    app.machine.eremove(a.eid).unwrap();
    app.machine.audit_epcm().unwrap();
    app.machine.audit_tlbs().unwrap();
}

/// After the outer is gone, the ex-inner's NEEXIT has nowhere to go.
#[test]
fn orphaned_inner_cannot_neexit() {
    let mut app = topology();
    let outer = app.layout("outer").unwrap();
    let a = app.layout("a").unwrap();
    app.machine.eremove(outer.eid).unwrap();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    let err = neexit(&mut app.machine, 0).unwrap_err();
    assert!(matches!(err, SgxError::GeneralProtection(_)));
}

/// Evicting an *inner* page interrupts only that inner's threads, not a
/// peer's (precise tracking in the inner→outer direction).
#[test]
fn inner_eviction_does_not_disturb_peer() {
    let mut app = topology();
    let a = app.layout("a").unwrap();
    let b = app.layout("b").unwrap();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    app.machine.read(0, a.heap_base, 1).unwrap();
    app.machine.eenter(1, b.eid, b.base).unwrap();
    app.machine.read(1, b.heap_base, 1).unwrap();
    let _blob = app.machine.ewb(a.eid, a.heap_base).unwrap();
    assert_eq!(app.machine.current_enclave(0), None, "a's thread kicked");
    assert_eq!(
        app.machine.current_enclave(1),
        Some(b.eid),
        "b's thread undisturbed"
    );
    app.machine.audit_tlbs().unwrap();
}
