//! The nested-enclave SDK runtime: enclave registry and call dispatch.
//!
//! Enclave "code" in this reproduction is a set of registered host
//! closures; the runtime drives the real architectural instructions around
//! each call (EENTER/EEXIT for ecalls and ocalls, NEENTER/NEEXIT for
//! n_ecalls and n_ocalls), enforces the EDL interface, and charges the
//! Table II call costs so workload timings come out of the same simulated
//! clock as the hardware events.

use crate::edl::Edl;
use crate::loader::{load_image, EnclaveImage, LoadedLayout};
use crate::nasso::{nasso, AssocPolicy, ExpectedIdentity};
use crate::transitions::{neenter, neexit};
use crate::validate::NestedValidator;
use ne_sgx::addr::{VirtAddr, PAGE_SIZE};
use ne_sgx::config::HwConfig;
use ne_sgx::enclave::{EnclaveId, ProcessId};
use ne_sgx::error::{Result, SgxError};
use ne_sgx::machine::Machine;
use ne_sgx::metrics::CycleCategory;
use ne_sgx::trace::SpanKind;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

/// A trusted function body running inside an enclave.
pub type TrustedFn = Arc<dyn Fn(&mut EnclaveCtx<'_>, &[u8]) -> Result<Vec<u8>> + Send + Sync>;

/// An untrusted function body (ocall target).
pub type UntrustedFn = Arc<dyn Fn(&mut UntrustedCtx<'_>, &[u8]) -> Result<Vec<u8>> + Send + Sync>;

/// Runtime record of a loaded enclave.
struct EnclaveRt {
    layout: LoadedLayout,
    edl: Edl,
    funcs: HashMap<String, TrustedFn>,
    heap_cursor: Cell<u64>,
    /// Current heap size — grows past `layout.heap_len` into the image's
    /// reserved region via SGX2 EAUG/EACCEPT.
    heap_limit: Cell<u64>,
    image: EnclaveImage,
}

/// Immutable (after setup) function/enclave registry.
#[derive(Default)]
struct Registry {
    enclaves: HashMap<String, EnclaveRt>,
    names_by_eid: HashMap<u64, String>,
    untrusted: HashMap<String, UntrustedFn>,
}

impl Registry {
    fn enclave(&self, name: &str) -> Result<&EnclaveRt> {
        self.enclaves
            .get(name)
            .ok_or_else(|| SgxError::GeneralProtection(format!("unknown enclave '{name}'")))
    }

    fn name_of(&self, eid: EnclaveId) -> Result<&str> {
        self.names_by_eid
            .get(&eid.0)
            .map(String::as_str)
            .ok_or_else(|| SgxError::GeneralProtection(format!("{eid} not registered")))
    }
}

/// An application composed of enclaves on a simulated machine.
///
/// # Example
///
/// ```
/// use ne_core::runtime::NestedApp;
/// use ne_core::loader::EnclaveImage;
/// use ne_core::edl::Edl;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), ne_sgx::error::SgxError> {
/// let mut app = NestedApp::new(ne_sgx::config::HwConfig::small());
/// let img = EnclaveImage::new("greeter", b"acme")
///     .edl(Edl::new().ecall("greet"));
/// app.load(img, [("greet".to_string(),
///     Arc::new(|_cx: &mut ne_core::runtime::EnclaveCtx<'_>, args: &[u8]| {
///         let mut out = b"hello, ".to_vec();
///         out.extend_from_slice(args);
///         Ok(out)
///     }) as ne_core::runtime::TrustedFn)])?;
/// let reply = app.ecall(0, "greeter", "greet", b"world")?;
/// assert_eq!(reply, b"hello, world");
/// # Ok(())
/// # }
/// ```
pub struct NestedApp {
    /// The machine (public: tests and experiments poke at it directly).
    pub machine: Machine,
    registry: Registry,
    next_base: u64,
    pid: ProcessId,
}

impl std::fmt::Debug for NestedApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NestedApp")
            .field("machine", &self.machine)
            .field("enclaves", &self.registry.enclaves.len())
            .finish_non_exhaustive()
    }
}

/// Where freshly loaded enclaves are placed (grows upward).
const ENCLAVE_VA_BASE: u64 = 0x1000_0000;

impl NestedApp {
    /// Boots a machine with the nested-enclave validator installed.
    pub fn new(cfg: HwConfig) -> NestedApp {
        NestedApp::with_machine(Machine::with_validator(
            cfg,
            Box::new(NestedValidator::new()),
        ))
    }

    /// Boots from an existing machine (e.g. baseline validator for the
    /// monolithic comparisons, or a deeper [`NestedValidator`]).
    pub fn with_machine(machine: Machine) -> NestedApp {
        NestedApp {
            machine,
            registry: Registry::default(),
            next_base: ENCLAVE_VA_BASE,
            pid: ProcessId(0),
        }
    }

    /// Registers an untrusted (ocall-able) function.
    pub fn register_untrusted(&mut self, name: &str, f: UntrustedFn) {
        self.registry.untrusted.insert(name.to_string(), f);
    }

    /// Loads an enclave image and registers its trusted functions.
    ///
    /// # Errors
    ///
    /// Loader errors propagate; registering two enclaves with one name is
    /// rejected.
    pub fn load(
        &mut self,
        image: EnclaveImage,
        funcs: impl IntoIterator<Item = (String, TrustedFn)>,
    ) -> Result<EnclaveId> {
        if self.registry.enclaves.contains_key(&image.name) {
            return Err(SgxError::GeneralProtection(format!(
                "enclave '{}' already loaded",
                image.name
            )));
        }
        // Enclaves are packed back to back — ELRANGEs are adjacent in the
        // shared address space, exactly the layout the HeartBleed case
        // study's over-read walks across.
        let base = VirtAddr(self.next_base);
        self.next_base += image.total_pages() * PAGE_SIZE as u64;
        let layout = load_image(&mut self.machine, self.pid, base, &image)?;
        let eid = layout.eid;
        let rt = EnclaveRt {
            heap_limit: Cell::new(layout.heap_len),
            layout,
            edl: image.edl.clone(),
            funcs: funcs.into_iter().collect(),
            heap_cursor: Cell::new(0),
            image,
        };
        self.registry
            .names_by_eid
            .insert(eid.0, rt.image.name.clone());
        self.registry.enclaves.insert(rt.image.name.clone(), rt);
        Ok(eid)
    }

    /// The eid of a loaded enclave.
    ///
    /// # Errors
    ///
    /// Fails for unknown names.
    pub fn eid(&self, name: &str) -> Result<EnclaveId> {
        Ok(self.registry.enclave(name)?.layout.eid)
    }

    /// Layout facts of a loaded enclave.
    ///
    /// # Errors
    ///
    /// Fails for unknown names.
    pub fn layout(&self, name: &str) -> Result<LoadedLayout> {
        Ok(self.registry.enclave(name)?.layout.clone())
    }

    /// Tears the named enclave down (EREMOVE) and forgets it, so a fresh
    /// [`load`](NestedApp::load) may reuse the name — the respawn path of
    /// a self-healing host. The EPC pages are freed; the virtual range is
    /// not reused (a respawn gets a fresh ELRANGE further up).
    ///
    /// # Errors
    ///
    /// Unknown name, or EREMOVE refusing because threads are still active
    /// or a TCS carries an in-flight context.
    pub fn unload(&mut self, name: &str) -> Result<EnclaveId> {
        let eid = self.registry.enclave(name)?.layout.eid;
        self.machine.eremove(eid)?;
        self.registry.enclaves.remove(name);
        self.registry.names_by_eid.remove(&eid.0);
        Ok(eid)
    }

    /// Runs NASSO between two loaded enclaves, using the expected
    /// identities embedded in their images (falling back to the live
    /// identity when the image did not pin one — convenient for tests).
    ///
    /// # Errors
    ///
    /// All NASSO failure modes (§ IV-B), e.g. identity mismatch.
    pub fn associate(&mut self, inner: &str, outer: &str) -> Result<()> {
        self.associate_with_policy(inner, outer, AssocPolicy::SingleOuter)
    }

    /// [`NestedApp::associate`] with an explicit policy (§ VIII lattice).
    ///
    /// # Errors
    ///
    /// See [`NestedApp::associate`].
    pub fn associate_with_policy(
        &mut self,
        inner: &str,
        outer: &str,
        policy: AssocPolicy,
    ) -> Result<()> {
        let (inner_eid, inner_expect_outer) = {
            let rt = self.registry.enclave(inner)?;
            (rt.layout.eid, rt.image.expected_outer.clone())
        };
        let (outer_eid, outer_expect_inners) = {
            let rt = self.registry.enclave(outer)?;
            (rt.layout.eid, rt.image.expected_inners.clone())
        };
        let live = |m: &Machine, eid: EnclaveId| {
            ExpectedIdentity::enclave(m.enclaves().get(eid).expect("loaded").mrenclave)
        };
        let inner_expects = inner_expect_outer.unwrap_or_else(|| live(&self.machine, outer_eid));
        // The outer's file may list several allowed inners; use the first
        // that matches, or fail with the first expectation (clear error).
        let inner_live = self
            .machine
            .enclaves()
            .get(inner_eid)
            .expect("loaded")
            .mrenclave;
        let outer_expects = outer_expect_inners
            .iter()
            .find(|e| e.mrenclave.as_ref() == Some(&inner_live))
            .cloned()
            .or_else(|| outer_expect_inners.first().cloned())
            .unwrap_or_else(|| live(&self.machine, inner_eid));
        nasso(
            &mut self.machine,
            inner_eid,
            outer_eid,
            &inner_expects,
            &outer_expects,
            policy,
        )
    }

    /// Dispatches an ecall: EENTER, run the trusted function, EEXIT.
    ///
    /// # Errors
    ///
    /// Interface violations, transition faults, and whatever the function
    /// itself returns.
    pub fn ecall(
        &mut self,
        core: usize,
        enclave: &str,
        func: &str,
        args: &[u8],
    ) -> Result<Vec<u8>> {
        let (eid, tcs, entry, f) = {
            let rt = self.registry.enclave(enclave)?;
            if !rt.edl.ecalls.contains(func) {
                return Err(SgxError::GeneralProtection(format!(
                    "'{func}' is not a declared ecall of '{enclave}'"
                )));
            }
            let f = rt.funcs.get(func).ok_or_else(|| {
                SgxError::GeneralProtection(format!("'{enclave}' has no body for '{func}'"))
            })?;
            (rt.layout.eid, rt.layout.base, rt.layout.entry, f.clone())
        };
        let span = self
            .machine
            .span_begin(core, SpanKind::Ecall, &format!("{enclave}::{func}"));
        if let Err(e) = self.machine.eenter(core, eid, tcs) {
            self.machine.span_end(core, span);
            return Err(e);
        }
        if let Err(e) = self.machine.fetch(core, entry) {
            // Unwind the completed entry so the core and TCS stay usable:
            // without the EEXIT a failed fetch (evicted or tampered code
            // page) would leave the core stuck in enclave mode.
            self.machine.eexit(core)?;
            self.machine.span_end(core, span);
            return Err(e);
        }
        let mut cx = EnclaveCtx {
            machine: &mut self.machine,
            registry: &self.registry,
            core,
            eid,
            name: enclave.to_string(),
        };
        let result = f(&mut cx, args);
        self.machine.eexit(core)?;
        // Table II: the measured ecall round-trip; the two TLB flushes were
        // already charged by EENTER/EEXIT.
        let extra = self
            .machine
            .config()
            .cost
            .ecall
            .saturating_sub(2 * self.machine.config().cost.tlb_flush);
        self.machine
            .charge_cat(core, CycleCategory::Transition, extra);
        self.machine.span_end(core, span);
        result
    }

    /// Builds an [`EnclaveCtx`] for a named enclave *without* performing a
    /// transition. The caller is responsible for having entered that
    /// enclave on `core` first (via [`Machine::eenter`]); experiment
    /// harnesses and tests use this to drive channels directly.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a loaded enclave.
    pub fn enclave_ctx(&mut self, core: usize, name: &str) -> EnclaveCtx<'_> {
        let eid = self
            .registry
            .enclave(name)
            .expect("enclave_ctx: unknown enclave")
            .layout
            .eid;
        EnclaveCtx {
            machine: &mut self.machine,
            registry: &self.registry,
            core,
            eid,
            name: name.to_string(),
        }
    }

    /// Runs an untrusted closure with machine access (host-side driver
    /// code: clients, attackers, the "OS").
    pub fn untrusted<R>(&mut self, core: usize, f: impl FnOnce(&mut UntrustedCtx<'_>) -> R) -> R {
        let mut cx = UntrustedCtx {
            machine: &mut self.machine,
            registry: &self.registry,
            core,
        };
        f(&mut cx)
    }
}

/// Execution context handed to trusted functions.
pub struct EnclaveCtx<'a> {
    /// The machine, for memory access and key instructions.
    pub machine: &'a mut Machine,
    registry: &'a Registry,
    core: usize,
    /// The executing enclave.
    pub eid: EnclaveId,
    name: String,
}

impl<'a> EnclaveCtx<'a> {
    /// The executing core.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The executing enclave's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reads enclave (or, for inners, outer-enclave) memory.
    ///
    /// # Errors
    ///
    /// Access-validation faults.
    pub fn read(&mut self, va: VirtAddr, len: usize) -> Result<Vec<u8>> {
        self.machine.read(self.core, va, len)
    }

    /// Writes memory through the validated path.
    ///
    /// # Errors
    ///
    /// Access-validation faults.
    pub fn write(&mut self, va: VirtAddr, data: &[u8]) -> Result<()> {
        self.machine.write(self.core, va, data)
    }

    /// Charges explicit software work (e.g. crypto cycles).
    pub fn charge(&mut self, cycles: u64) {
        self.machine.charge(self.core, cycles);
    }

    /// Bump-allocates `len` bytes in this enclave's heap.
    ///
    /// # Errors
    ///
    /// Fails when the heap is exhausted.
    pub fn alloc(&mut self, len: usize) -> Result<VirtAddr> {
        alloc_in(self.registry, &self.name, len)
    }

    /// Bump-allocates in another enclave's heap. Only meaningful where the
    /// hardware lets the caller actually touch that heap (an inner
    /// allocating shared buffers in its outer).
    ///
    /// # Errors
    ///
    /// Fails for unknown enclaves or exhausted heaps.
    pub fn alloc_in(&mut self, enclave: &str, len: usize) -> Result<VirtAddr> {
        alloc_in(self.registry, enclave, len)
    }

    /// Heap base of another enclave (for sharing layouts).
    ///
    /// # Errors
    ///
    /// Fails for unknown enclaves.
    pub fn heap_base_of(&self, enclave: &str) -> Result<VirtAddr> {
        Ok(self.registry.enclave(enclave)?.layout.heap_base)
    }

    /// Grows this enclave's heap by `pages` 4 KiB pages using SGX2 dynamic
    /// memory: the runtime issues the OS-side `EAUG` for each page of the
    /// image's reserved region, and the enclave `EACCEPT`s it before use.
    ///
    /// # Errors
    ///
    /// Fails when the image reserved no (or not enough) growth room, or on
    /// EPC exhaustion.
    pub fn expand_heap(&mut self, pages: u64) -> Result<()> {
        let rt = self.registry.enclave(&self.name)?;
        let limit = rt.heap_limit.get();
        let max = rt.layout.heap_len + rt.image.reserve_pages * PAGE_SIZE as u64;
        let grow = pages * PAGE_SIZE as u64;
        if limit + grow > max {
            return Err(SgxError::GeneralProtection(format!(
                "'{}' reserved only {} dynamic pages",
                self.name, rt.image.reserve_pages
            )));
        }
        let grow_base = rt.layout.heap_base.add(limit);
        let eid = rt.layout.eid;
        for i in 0..pages {
            let va = grow_base.add(i * PAGE_SIZE as u64);
            self.machine.eaug(eid, va)?;
            self.machine.eaccept(self.core, va)?;
        }
        self.registry
            .enclave(&self.name)?
            .heap_limit
            .set(limit + grow);
        Ok(())
    }

    /// Seals `data` with this enclave's EGETKEY sealing key so it can rest
    /// in untrusted storage. The blob can only be opened by an enclave
    /// with the same identity on this machine (policy
    /// [`ne_sgx::attest::KeyPolicy::SealToEnclave`]).
    ///
    /// # Errors
    ///
    /// Key-derivation faults (never inside a correctly entered enclave).
    pub fn seal_data(&mut self, data: &[u8]) -> Result<Vec<u8>> {
        use ne_sgx::attest::KeyPolicy;
        let key = self.machine.egetkey(self.core, KeyPolicy::SealToEnclave)?;
        // Fresh nonce per blob, carried in the header.
        let mut nonce = [0u8; 12];
        let stamp = ne_crypto::sha256::digest(data);
        nonce.copy_from_slice(&stamp[..12]);
        let cipher = ne_crypto::gcm::AesGcm::new(&key);
        let mut out = nonce.to_vec();
        out.extend(cipher.seal(&nonce, data, b"ne-seal"));
        Ok(out)
    }

    /// Opens a blob produced by [`EnclaveCtx::seal_data`] by an enclave
    /// with the same identity.
    ///
    /// # Errors
    ///
    /// [`SgxError::GeneralProtection`] when the blob is malformed, forged,
    /// or sealed by a different identity.
    pub fn unseal_data(&mut self, blob: &[u8]) -> Result<Vec<u8>> {
        use ne_sgx::attest::KeyPolicy;
        if blob.len() < 12 {
            return Err(SgxError::GeneralProtection("sealed blob too short".into()));
        }
        let key = self.machine.egetkey(self.core, KeyPolicy::SealToEnclave)?;
        let nonce: [u8; 12] = blob[..12].try_into().expect("12 bytes");
        ne_crypto::gcm::AesGcm::new(&key)
            .open(&nonce, &blob[12..], b"ne-seal")
            .map_err(|_| SgxError::GeneralProtection("sealed blob failed authentication".into()))
    }

    /// Performs an ocall: EEXIT to untrusted mode, run the registered
    /// untrusted function, EENTER back.
    ///
    /// # Errors
    ///
    /// Interface violations and transition faults propagate, as does the
    /// untrusted function's own error.
    pub fn ocall(&mut self, func: &str, args: &[u8]) -> Result<Vec<u8>> {
        let rt = self.registry.enclave(&self.name)?;
        if !rt.edl.ocalls.contains(func) {
            return Err(SgxError::GeneralProtection(format!(
                "'{func}' is not a declared ocall of '{}'",
                self.name
            )));
        }
        let (eid, tcs) = (rt.layout.eid, rt.layout.base);
        let f = self
            .registry
            .untrusted
            .get(func)
            .ok_or_else(|| SgxError::GeneralProtection(format!("no untrusted body for '{func}'")))?
            .clone();
        let span = self.machine.span_begin(self.core, SpanKind::Ocall, func);
        self.machine.eexit(self.core)?;
        let mut ucx = UntrustedCtx {
            machine: self.machine,
            registry: self.registry,
            core: self.core,
        };
        let result = f(&mut ucx, args);
        self.machine.eenter(self.core, eid, tcs)?;
        let extra = self
            .machine
            .config()
            .cost
            .ocall
            .saturating_sub(2 * self.machine.config().cost.tlb_flush);
        self.machine
            .charge_cat(self.core, CycleCategory::Transition, extra);
        self.machine.span_end(self.core, span);
        result
    }

    /// Runs a registered untrusted function on another (untrusted-mode)
    /// core without any enclave transition — the service half of a
    /// switchless call ([`crate::switchless`]). The function must still be
    /// a declared ocall of this enclave.
    ///
    /// # Errors
    ///
    /// Interface violations; the worker must be a valid core in untrusted
    /// mode.
    pub fn run_untrusted_on(&mut self, core: usize, func: &str, args: &[u8]) -> Result<Vec<u8>> {
        {
            let rt = self.registry.enclave(&self.name)?;
            if !rt.edl.ocalls.contains(func) {
                return Err(SgxError::GeneralProtection(format!(
                    "'{func}' is not a declared ocall of '{}'",
                    self.name
                )));
            }
        }
        if self.machine.current_enclave(core).is_some() {
            return Err(SgxError::GeneralProtection(
                "switchless worker core is in enclave mode".into(),
            ));
        }
        let f = self
            .registry
            .untrusted
            .get(func)
            .ok_or_else(|| SgxError::GeneralProtection(format!("no untrusted body for '{func}'")))?
            .clone();
        let mut ucx = UntrustedCtx {
            machine: self.machine,
            registry: self.registry,
            core,
        };
        f(&mut ucx, args)
    }

    /// Performs an n_ecall into one of this enclave's inner enclaves:
    /// NEENTER, run, NEEXIT.
    ///
    /// # Errors
    ///
    /// Hardware rejects calls into enclaves that are not inners of the
    /// caller; the EDL must declare the function.
    pub fn n_ecall(&mut self, inner: &str, func: &str, args: &[u8]) -> Result<Vec<u8>> {
        let (inner_eid, inner_tcs, f) = {
            let rt = self.registry.enclave(inner)?;
            if !rt.edl.n_ecalls.contains(func) {
                return Err(SgxError::GeneralProtection(format!(
                    "'{func}' is not a declared n_ecall of '{inner}'"
                )));
            }
            let f = rt.funcs.get(func).ok_or_else(|| {
                SgxError::GeneralProtection(format!("'{inner}' has no body for '{func}'"))
            })?;
            (rt.layout.eid, rt.layout.base, f.clone())
        };
        let span =
            self.machine
                .span_begin(self.core, SpanKind::NEcall, &format!("{inner}::{func}"));
        if let Err(e) = neenter(self.machine, self.core, inner_eid, inner_tcs) {
            // Close the span so a refused entry (busy TCS, poisoned inner)
            // cannot leak an open frame into the latency accounting.
            self.machine.span_end(self.core, span);
            return Err(e);
        }
        let mut cx = EnclaveCtx {
            machine: self.machine,
            registry: self.registry,
            core: self.core,
            eid: inner_eid,
            name: inner.to_string(),
        };
        let result = f(&mut cx, args);
        neexit(self.machine, self.core)?;
        let extra = self
            .machine
            .config()
            .cost
            .n_ecall
            .saturating_sub(2 * self.machine.config().cost.tlb_flush);
        self.machine
            .charge_cat(self.core, CycleCategory::Transition, extra);
        self.machine.span_end(self.core, span);
        result
    }

    /// Performs an n_ocall into this (inner) enclave's outer enclave:
    /// NEEXIT, run the outer's function, NEENTER back. "With the n_ocall,
    /// an application in an inner enclave can call library functions
    /// isolated in the outer enclave with the same procedure call syntax."
    ///
    /// # Errors
    ///
    /// Fails when the caller has no outer, the EDL does not declare the
    /// function, or the outer provides no body for it.
    pub fn n_ocall(&mut self, func: &str, args: &[u8]) -> Result<Vec<u8>> {
        self.n_ocall_impl(func, args, None)
    }

    /// [`EnclaveCtx::n_ocall`] with an explicit outer enclave, for § VIII
    /// lattice inners associated with several outers.
    ///
    /// # Errors
    ///
    /// As [`EnclaveCtx::n_ocall`]; additionally faults when `outer` is not
    /// an outer enclave of the caller.
    pub fn n_ocall_to(&mut self, outer: &str, func: &str, args: &[u8]) -> Result<Vec<u8>> {
        let outer_eid = self.registry.enclave(outer)?.layout.eid;
        self.n_ocall_impl(func, args, Some(outer_eid))
    }

    fn n_ocall_impl(
        &mut self,
        func: &str,
        args: &[u8],
        target: Option<EnclaveId>,
    ) -> Result<Vec<u8>> {
        {
            let rt = self.registry.enclave(&self.name)?;
            if !rt.edl.n_ocalls.contains(func) {
                return Err(SgxError::GeneralProtection(format!(
                    "'{func}' is not a declared n_ocall of '{}'",
                    self.name
                )));
            }
        }
        let inner_eid = self.eid;
        let inner_tcs = self.registry.enclave(&self.name)?.layout.base;
        let span = self.machine.span_begin(self.core, SpanKind::NOcall, func);
        match target {
            Some(outer) => crate::transitions::neexit_to(self.machine, self.core, outer)?,
            None => neexit(self.machine, self.core)?,
        }
        // Now in the outer enclave: resolve its identity and function.
        let outer_eid = self
            .machine
            .current_enclave(self.core)
            .expect("NEEXIT lands in the outer enclave");
        let outer_name = self.registry.name_of(outer_eid)?.to_string();
        let f = {
            let rt = self.registry.enclave(&outer_name)?;
            rt.funcs
                .get(func)
                .ok_or_else(|| {
                    SgxError::GeneralProtection(format!(
                        "outer '{outer_name}' has no body for '{func}'"
                    ))
                })?
                .clone()
        };
        let mut cx = EnclaveCtx {
            machine: self.machine,
            registry: self.registry,
            core: self.core,
            eid: outer_eid,
            name: outer_name,
        };
        let result = f(&mut cx, args);
        neenter(self.machine, self.core, inner_eid, inner_tcs)?;
        let extra = self
            .machine
            .config()
            .cost
            .n_ocall
            .saturating_sub(2 * self.machine.config().cost.tlb_flush);
        self.machine
            .charge_cat(self.core, CycleCategory::Transition, extra);
        self.machine.span_end(self.core, span);
        result
    }
}

/// Execution context for untrusted code (clients, the OS, attackers).
pub struct UntrustedCtx<'a> {
    /// The machine.
    pub machine: &'a mut Machine,
    registry: &'a Registry,
    core: usize,
}

impl<'a> UntrustedCtx<'a> {
    /// The executing core.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Reads memory as untrusted code (EPC reads observe abort-page ones).
    ///
    /// # Errors
    ///
    /// Page faults on unmapped addresses.
    pub fn read(&mut self, va: VirtAddr, len: usize) -> Result<Vec<u8>> {
        self.machine.read(self.core, va, len)
    }

    /// Writes memory as untrusted code (EPC writes are dropped).
    ///
    /// # Errors
    ///
    /// Page faults on unmapped addresses.
    pub fn write(&mut self, va: VirtAddr, data: &[u8]) -> Result<()> {
        self.machine.write(self.core, va, data)
    }

    /// Allocates fresh untrusted pages.
    pub fn alloc_untrusted(&mut self, pages: usize) -> VirtAddr {
        let pid = self.machine.core(self.core).pid;
        self.machine.os_alloc_untrusted(pid, pages)
    }

    /// Charges software work to the core.
    pub fn charge(&mut self, cycles: u64) {
        self.machine.charge(self.core, cycles);
    }

    /// Dispatches an ecall from untrusted context (used by baseline
    /// monolithic flows that route data between enclaves).
    ///
    /// # Errors
    ///
    /// See [`NestedApp::ecall`].
    pub fn ecall(&mut self, enclave: &str, func: &str, args: &[u8]) -> Result<Vec<u8>> {
        let (eid, tcs, f) = {
            let rt = self.registry.enclave(enclave)?;
            if !rt.edl.ecalls.contains(func) {
                return Err(SgxError::GeneralProtection(format!(
                    "'{func}' is not a declared ecall of '{enclave}'"
                )));
            }
            let f = rt.funcs.get(func).ok_or_else(|| {
                SgxError::GeneralProtection(format!("'{enclave}' has no body for '{func}'"))
            })?;
            (rt.layout.eid, rt.layout.base, f.clone())
        };
        let span =
            self.machine
                .span_begin(self.core, SpanKind::Ecall, &format!("{enclave}::{func}"));
        if let Err(e) = self.machine.eenter(self.core, eid, tcs) {
            self.machine.span_end(self.core, span);
            return Err(e);
        }
        let mut cx = EnclaveCtx {
            machine: self.machine,
            registry: self.registry,
            core: self.core,
            eid,
            name: enclave.to_string(),
        };
        let result = f(&mut cx, args);
        self.machine.eexit(self.core)?;
        let extra = self
            .machine
            .config()
            .cost
            .ecall
            .saturating_sub(2 * self.machine.config().cost.tlb_flush);
        self.machine
            .charge_cat(self.core, CycleCategory::Transition, extra);
        self.machine.span_end(self.core, span);
        result
    }
}

fn alloc_in(registry: &Registry, enclave: &str, len: usize) -> Result<VirtAddr> {
    let rt = registry.enclave(enclave)?;
    let aligned = (len as u64 + 63) & !63; // line-align allocations
    let cursor = rt.heap_cursor.get();
    if cursor + aligned > rt.heap_limit.get() {
        return Err(SgxError::GeneralProtection(format!(
            "heap of '{enclave}' exhausted ({} of {} bytes used)",
            cursor,
            rt.heap_limit.get()
        )));
    }
    rt.heap_cursor.set(cursor + aligned);
    Ok(rt.layout.heap_base.add(cursor))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(
        f: impl Fn(&mut EnclaveCtx<'_>, &[u8]) -> Result<Vec<u8>> + Send + Sync + 'static,
    ) -> TrustedFn {
        Arc::new(f)
    }

    fn demo_app() -> NestedApp {
        let mut app = NestedApp::new(HwConfig::small());
        // Outer: a "library" exposing `lib_twice` to inners and `serve` to
        // the untrusted world.
        let lib = EnclaveImage::new("lib", b"provider")
            .heap_pages(4)
            .edl(Edl::new().ecall("serve").n_ecall("unused"));
        app.load(
            lib,
            [
                (
                    "serve".to_string(),
                    tf(|cx, args| {
                        // Outer serves by delegating to the inner.
                        cx.n_ecall("app", "process", args)
                    }),
                ),
                (
                    "lib_twice".to_string(),
                    tf(|_cx, args| {
                        let mut out = args.to_vec();
                        out.extend_from_slice(args);
                        Ok(out)
                    }),
                ),
            ],
        )
        .unwrap();
        // Inner: application logic that uses the outer library via n_ocall.
        let appimg = EnclaveImage::new("app", b"tenant").heap_pages(2).edl(
            Edl::new()
                .ecall("process")
                .n_ecall("process")
                .n_ocall("lib_twice"),
        );
        app.load(
            appimg,
            [(
                "process".to_string(),
                tf(|cx, args| {
                    let doubled = cx.n_ocall("lib_twice", args)?;
                    let mut out = b"inner:".to_vec();
                    out.extend_from_slice(&doubled);
                    Ok(out)
                }),
            )],
        )
        .unwrap();
        app.associate("app", "lib").unwrap();
        app
    }

    #[test]
    fn ecall_roundtrip() {
        let mut app = demo_app();
        let out = app.ecall(0, "app", "process", b"xy").unwrap();
        assert_eq!(out, b"inner:xyxy");
        assert_eq!(app.machine.current_enclave(0), None);
    }

    #[test]
    fn n_ecall_through_outer() {
        let mut app = demo_app();
        let out = app.ecall(0, "lib", "serve", b"ab").unwrap();
        assert_eq!(out, b"inner:abab");
        let stats = app.machine.stats();
        assert!(stats.n_ecalls >= 1, "outer→inner used NEENTER");
        assert!(stats.n_ocalls >= 1, "inner→outer used NEEXIT");
    }

    #[test]
    fn undeclared_ecall_rejected() {
        let mut app = demo_app();
        let err = app.ecall(0, "lib", "lib_twice", b"x").unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn undeclared_n_ocall_rejected() {
        let mut app = NestedApp::new(HwConfig::small());
        let lib = EnclaveImage::new("lib", b"p").edl(Edl::new());
        app.load(lib, [("secret_fn".to_string(), tf(|_cx, _| Ok(vec![])))])
            .unwrap();
        let inner = EnclaveImage::new("app", b"t").edl(Edl::new().ecall("go"));
        app.load(
            inner,
            [("go".to_string(), tf(|cx, _| cx.n_ocall("secret_fn", b"")))],
        )
        .unwrap();
        app.associate("app", "lib").unwrap();
        let err = app.ecall(0, "app", "go", b"").unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn ocall_runs_untrusted_function() {
        let mut app = NestedApp::new(HwConfig::small());
        app.register_untrusted(
            "get_time",
            Arc::new(|_cx, _| Ok(42u64.to_le_bytes().to_vec())),
        );
        let img = EnclaveImage::new("e", b"a").edl(Edl::new().ecall("run").ocall("get_time"));
        app.load(
            img,
            [("run".to_string(), tf(|cx, _| cx.ocall("get_time", b"")))],
        )
        .unwrap();
        let out = app.ecall(0, "e", "run", b"").unwrap();
        assert_eq!(out, 42u64.to_le_bytes());
        let s = app.machine.stats();
        // ecall EENTER + ocall (EEXIT+EENTER) + final EEXIT.
        assert_eq!(s.ecalls, 2);
        assert_eq!(s.ocalls, 2);
    }

    #[test]
    fn heap_alloc_within_enclave() {
        let mut app = demo_app();
        let out = app.ecall(0, "app", "process", b"z").unwrap();
        assert!(!out.is_empty());
        // Direct allocation checks.
        app.machine
            .eenter(0, app.eid("app").unwrap(), app.layout("app").unwrap().base)
            .unwrap();
        let mut cx = EnclaveCtx {
            machine: &mut app.machine,
            registry: &app.registry,
            core: 0,
            eid: app.registry.enclave("app").unwrap().layout.eid,
            name: "app".to_string(),
        };
        let a = cx.alloc(100).unwrap();
        let b = cx.alloc(100).unwrap();
        assert!(b.0 >= a.0 + 100);
        cx.write(a, b"heap data").unwrap();
        assert_eq!(cx.read(a, 9).unwrap(), b"heap data");
    }

    #[test]
    fn heap_exhaustion_reported() {
        let mut app = demo_app();
        let err = alloc_in(&app.registry, "app", 3 * PAGE_SIZE).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
        let _ = &mut app;
    }

    #[test]
    fn duplicate_enclave_name_rejected() {
        let mut app = NestedApp::new(HwConfig::small());
        app.load(EnclaveImage::new("x", b"a"), []).unwrap();
        let err = app.load(EnclaveImage::new("x", b"a"), []).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn table2_call_costs_reflected_in_cycles() {
        let mut app = demo_app();
        let cost = app.machine.config().cost.clone();
        app.machine.reset_metrics();
        let n = 100;
        for _ in 0..n {
            app.ecall(0, "app", "process", b"q").unwrap();
        }
        let cycles = app.machine.cycles(0);
        // Each iteration: 1 ecall + 1 n_ocall round trip, plus memory system
        // noise; the call costs must dominate and be of the right order.
        let expected_min = n * (cost.ecall + cost.n_ocall);
        assert!(
            cycles >= expected_min,
            "cycles {cycles} < expected minimum {expected_min}"
        );
        assert!(
            cycles < expected_min * 3,
            "cycles {cycles} unreasonably high"
        );
    }

    #[test]
    fn lattice_inner_routes_n_ocalls_by_outer() {
        use crate::nasso::AssocPolicy;
        let mut app = NestedApp::new(HwConfig::small());
        for (name, reply) in [("north", b"N" as &[u8]), ("south", b"S")] {
            let img = EnclaveImage::new(name, b"provider").edl(Edl::new());
            let reply = reply.to_vec();
            app.load(
                img,
                [("whoami".to_string(), tf(move |_cx, _| Ok(reply.clone())))],
            )
            .unwrap();
        }
        let inner = EnclaveImage::new("bridge", b"tenant")
            .edl(Edl::new().ecall("ask_both").n_ocall("whoami"));
        app.load(
            inner,
            [(
                "ask_both".to_string(),
                tf(|cx, _| {
                    let mut out = cx.n_ocall_to("north", "whoami", b"")?;
                    out.extend(cx.n_ocall_to("south", "whoami", b"")?);
                    Ok(out)
                }),
            )],
        )
        .unwrap();
        app.associate_with_policy("bridge", "north", AssocPolicy::Lattice)
            .unwrap();
        app.associate_with_policy("bridge", "south", AssocPolicy::Lattice)
            .unwrap();
        let out = app.ecall(0, "bridge", "ask_both", b"").unwrap();
        assert_eq!(out, b"NS");
        // Plain n_ocall is ambiguous for a lattice inner.
        let img2 =
            EnclaveImage::new("bridge2", b"tenant").edl(Edl::new().ecall("ask").n_ocall("whoami"));
        app.load(
            img2,
            [("ask".to_string(), tf(|cx, _| cx.n_ocall("whoami", b"")))],
        )
        .unwrap();
        app.associate_with_policy("bridge2", "north", AssocPolicy::Lattice)
            .unwrap();
        app.associate_with_policy("bridge2", "south", AssocPolicy::Lattice)
            .unwrap();
        let err = app.ecall(0, "bridge2", "ask", b"").unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn dynamic_heap_growth_via_eaug_eaccept() {
        let mut app = NestedApp::new(HwConfig::small());
        let img = EnclaveImage::new("grower", b"owner")
            .heap_pages(1)
            .reserve_pages(2)
            .edl(Edl::new().ecall("fill"));
        let fill: TrustedFn = Arc::new(|cx, _| {
            // Exhaust the static heap, grow, and keep allocating.
            let a = cx.alloc(3000)?;
            cx.write(a, b"static part")?;
            assert!(cx.alloc(3000).is_err(), "static heap exhausted");
            cx.expand_heap(2)?;
            let b = cx.alloc(6000)?;
            cx.write(b, b"dynamic part")?;
            let mut out = cx.read(a, 11)?;
            out.extend(cx.read(b, 12)?);
            Ok(out)
        });
        app.load(img, [("fill".to_string(), fill)]).unwrap();
        let out = app.ecall(0, "grower", "fill", b"").unwrap();
        assert_eq!(out, b"static partdynamic part");
        // Growth is capped by the reservation.
        let img2 = EnclaveImage::new("capped", b"owner")
            .heap_pages(1)
            .reserve_pages(1)
            .edl(Edl::new().ecall("grow"));
        let grow: TrustedFn = Arc::new(|cx, _| {
            cx.expand_heap(2)?;
            Ok(vec![])
        });
        app.load(img2, [("grow".to_string(), grow)]).unwrap();
        let err = app.ecall(0, "capped", "grow", b"").unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
        app.machine.audit_epcm().unwrap();
    }

    #[test]
    fn dynamic_pages_are_not_measured() {
        // Two images differing only in reserve size have different
        // ELRANGEs (measured), but the dynamic *contents* never affect
        // MRENCLAVE: growing at runtime leaves the identity unchanged.
        let mut app = NestedApp::new(HwConfig::small());
        let img = EnclaveImage::new("g", b"o")
            .heap_pages(1)
            .reserve_pages(1)
            .edl(Edl::new().ecall("grow"));
        let grow: TrustedFn = Arc::new(|cx, _| {
            cx.expand_heap(1)?;
            Ok(vec![])
        });
        let eid = app.load(img, [("grow".to_string(), grow)]).unwrap();
        let before = app.machine.enclaves().get(eid).unwrap().mrenclave;
        app.ecall(0, "g", "grow", b"").unwrap();
        let after = app.machine.enclaves().get(eid).unwrap().mrenclave;
        assert_eq!(before, after);
    }

    #[test]
    fn seal_unseal_roundtrip_and_cross_enclave_rejection() {
        let mut app = NestedApp::new(HwConfig::small());
        for name in ["one", "two"] {
            let img =
                EnclaveImage::new(name, b"owner").edl(Edl::new().ecall("seal").ecall("unseal"));
            app.load(
                img,
                [
                    ("seal".to_string(), tf(|cx, args| cx.seal_data(args))),
                    ("unseal".to_string(), tf(|cx, args| cx.unseal_data(args))),
                ],
            )
            .unwrap();
        }
        let blob = app.ecall(0, "one", "seal", b"durable secret").unwrap();
        assert!(!blob.windows(14).any(|w| w == b"durable secret"));
        assert_eq!(
            app.ecall(0, "one", "unseal", &blob).unwrap(),
            b"durable secret"
        );
        // A different enclave cannot open it.
        let err = app.ecall(0, "two", "unseal", &blob).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
        // Nor does a tampered blob open.
        let mut bad = blob.clone();
        let n = bad.len();
        bad[n - 1] ^= 1;
        let err = app.ecall(0, "one", "unseal", &bad).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn eremove_unlinks_nested_associations() {
        let mut app = demo_app();
        let lib = app.eid("lib").unwrap();
        let inner = app.eid("app").unwrap();
        assert!(!app
            .machine
            .enclaves()
            .get(inner)
            .unwrap()
            .outer_eids
            .is_empty());
        app.machine.eremove(lib).unwrap();
        assert!(
            app.machine
                .enclaves()
                .get(inner)
                .unwrap()
                .outer_eids
                .is_empty(),
            "EREMOVE of the outer must sever the inner's link"
        );
        app.machine.audit_epcm().unwrap();
    }

    #[test]
    fn n_ocall_to_unrelated_outer_rejected() {
        let mut app = demo_app();
        let stranger = EnclaveImage::new("stranger", b"x").edl(Edl::new());
        app.load(
            stranger,
            [("lib_twice".to_string(), tf(|_cx, a| Ok(a.to_vec())))],
        )
        .unwrap();
        let img = EnclaveImage::new("probe", b"t").edl(Edl::new().ecall("go").n_ocall("lib_twice"));
        app.load(
            img,
            [(
                "go".to_string(),
                tf(|cx, a| cx.n_ocall_to("stranger", "lib_twice", a)),
            )],
        )
        .unwrap();
        app.associate("probe", "lib").unwrap();
        let err = app.ecall(0, "probe", "go", b"x").unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn untrusted_ctx_sees_abort_page() {
        let mut app = demo_app();
        let heap = app.layout("app").unwrap().heap_base;
        app.ecall(0, "app", "process", b"seed").unwrap();
        let leaked = app.untrusted(0, |cx| cx.read(heap, 8).unwrap());
        assert_eq!(leaked, vec![0xFF; 8]);
    }
}
