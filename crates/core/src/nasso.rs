//! `NASSO` — the association instruction (paper Table I, § IV-B/C).
//!
//! After both enclaves are individually built and EINITed, NASSO binds an
//! inner to an outer. Before touching any SECS, it cross-validates the two
//! identities: each enclave's signed file carries the *expected* identity
//! of its counterpart, and the instruction compares those expectations with
//! the live MRENCLAVE/MRSIGNER values. A malicious OS therefore cannot
//! join a rogue inner to a victim outer (or vice versa) — the "secure
//! binding" property of § VII-B.

use ne_crypto::Digest32;
use ne_sgx::enclave::EnclaveId;
use ne_sgx::error::{Result, SgxError};
use ne_sgx::machine::Machine;

/// The expected identity of a counterpart enclave, as embedded in a signed
/// enclave file. At least one of the two fields must be present.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpectedIdentity {
    /// Exact expected measurement, if pinned.
    pub mrenclave: Option<Digest32>,
    /// Expected author identity, if pinned.
    pub mrsigner: Option<Digest32>,
}

impl ExpectedIdentity {
    /// Pins the exact enclave measurement.
    pub fn enclave(mrenclave: Digest32) -> ExpectedIdentity {
        ExpectedIdentity {
            mrenclave: Some(mrenclave),
            mrsigner: None,
        }
    }

    /// Pins the author identity (any enclave signed by this author).
    pub fn signer(mrsigner: Digest32) -> ExpectedIdentity {
        ExpectedIdentity {
            mrenclave: None,
            mrsigner: Some(mrsigner),
        }
    }

    fn matches(&self, mrenclave: &Digest32, mrsigner: &Digest32) -> bool {
        if self.mrenclave.is_none() && self.mrsigner.is_none() {
            return false; // an empty expectation authorizes nothing
        }
        if let Some(expected) = &self.mrenclave {
            if expected != mrenclave {
                return false;
            }
        }
        if let Some(expected) = &self.mrsigner {
            if expected != mrsigner {
                return false;
            }
        }
        true
    }
}

/// Association policy: the paper's base single-outer model, or the § VIII
/// lattice extension allowing an inner to bind several outers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssocPolicy {
    /// An inner enclave may have exactly one outer (base design).
    #[default]
    SingleOuter,
    /// An inner enclave may bind multiple outers (§ VIII lattice model).
    Lattice,
}

/// Executes `NASSO`, associating `inner` with `outer`.
///
/// `inner_expects` is the expected identity of the *outer* enclave taken
/// from the inner enclave's signed file, and `outer_expects` the expected
/// identity of the *inner* taken from the outer's file ("Those values of an
/// outer enclave are validated against the expected values by the inner
/// enclave ... and vice versa").
///
/// # Errors
///
/// General-protection faults when: either enclave is missing or
/// uninitialized, the enclaves live in different processes, either identity
/// expectation fails, the association would create a cycle, or the inner
/// already has an outer under [`AssocPolicy::SingleOuter`].
pub fn nasso(
    machine: &mut Machine,
    inner: EnclaveId,
    outer: EnclaveId,
    inner_expects: &ExpectedIdentity,
    outer_expects: &ExpectedIdentity,
    policy: AssocPolicy,
) -> Result<()> {
    if inner == outer {
        return Err(SgxError::GeneralProtection(
            "NASSO: an enclave cannot be its own outer".into(),
        ));
    }
    let (inner_mre, inner_mrs, inner_pid, inner_outers) = {
        let secs = machine
            .enclaves()
            .get(inner)
            .ok_or(SgxError::NoSuchEnclave(inner))?;
        if !secs.is_initialized() {
            return Err(SgxError::BadEnclaveState("NASSO before inner EINIT".into()));
        }
        (
            secs.mrenclave,
            secs.mrsigner,
            secs.pid,
            secs.outer_eids.clone(),
        )
    };
    let (outer_mre, outer_mrs, outer_pid) = {
        let secs = machine
            .enclaves()
            .get(outer)
            .ok_or(SgxError::NoSuchEnclave(outer))?;
        if !secs.is_initialized() {
            return Err(SgxError::BadEnclaveState("NASSO before outer EINIT".into()));
        }
        (secs.mrenclave, secs.mrsigner, secs.pid)
    };
    if inner_pid != outer_pid {
        return Err(SgxError::GeneralProtection(
            "NASSO: inner and outer must share a process (§ IV-A)".into(),
        ));
    }
    if policy == AssocPolicy::SingleOuter && !inner_outers.is_empty() {
        return Err(SgxError::GeneralProtection(
            "NASSO: inner already associated (single-outer model)".into(),
        ));
    }
    if inner_outers.contains(&outer) {
        return Err(SgxError::GeneralProtection(
            "NASSO: association already exists".into(),
        ));
    }
    // The inner's file must authorize this outer, and vice versa.
    if !inner_expects.matches(&outer_mre, &outer_mrs) {
        return Err(SgxError::InitVerification(
            "NASSO: outer enclave identity does not match inner's expectation".into(),
        ));
    }
    if !outer_expects.matches(&inner_mre, &inner_mrs) {
        return Err(SgxError::InitVerification(
            "NASSO: inner enclave identity does not match outer's expectation".into(),
        ));
    }
    // Reject cycles: walking outward from `outer` must never reach `inner`.
    if outer_closure_contains(machine, outer, inner) {
        return Err(SgxError::GeneralProtection(
            "NASSO: association would create a nesting cycle".into(),
        ));
    }
    machine
        .enclaves_mut()
        .get_mut(inner)
        .expect("checked above")
        .outer_eids
        .push(outer);
    machine
        .enclaves_mut()
        .get_mut(outer)
        .expect("checked above")
        .inner_eids
        .push(inner);
    Ok(())
}

fn outer_closure_contains(machine: &Machine, start: EnclaveId, needle: EnclaveId) -> bool {
    let mut seen = Vec::new();
    let mut frontier = vec![start];
    while let Some(id) = frontier.pop() {
        if id == needle {
            return true;
        }
        if seen.contains(&id) {
            continue;
        }
        seen.push(id);
        if let Some(secs) = machine.enclaves().get(id) {
            frontier.extend(secs.outer_eids.iter().copied());
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ne_sgx::addr::{VirtAddr, VirtRange, PAGE_SIZE};
    use ne_sgx::config::HwConfig;
    use ne_sgx::enclave::{ProcessId, SigStruct};
    use ne_sgx::epcm::{PagePerms, PageType};
    use ne_sgx::instr::PageSource;

    fn build(m: &mut Machine, base: u64, signer: &[u8], pid: ProcessId) -> EnclaveId {
        let base = VirtAddr(base);
        let eid = m
            .ecreate(pid, VirtRange::new(base, 2 * PAGE_SIZE as u64))
            .unwrap();
        m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
        // Page contents derive from the author so each test enclave is a
        // *content-distinct* identity (measurement is load-position
        // independent, so base alone no longer distinguishes enclaves —
        // exactly as on real hardware).
        m.eadd(
            eid,
            base.add(PAGE_SIZE as u64),
            PageType::Reg,
            PageSource::Image(signer.to_vec()),
            PagePerms::RW,
        )
        .unwrap();
        m.eextend(eid, base.add(PAGE_SIZE as u64)).unwrap();
        let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
        m.einit(eid, &SigStruct::new(signer, measured)).unwrap();
        eid
    }

    fn identity_of(m: &Machine, eid: EnclaveId) -> ExpectedIdentity {
        ExpectedIdentity::enclave(m.enclaves().get(eid).unwrap().mrenclave)
    }

    /// NASSO with live identities as the mutual expectations.
    fn assoc(
        m: &mut Machine,
        inner: EnclaveId,
        outer: EnclaveId,
        policy: AssocPolicy,
    ) -> Result<()> {
        let oi = identity_of(m, outer);
        let ii = identity_of(m, inner);
        nasso(m, inner, outer, &oi, &ii, policy)
    }

    #[test]
    fn association_succeeds_with_matching_expectations() {
        let mut m = Machine::new(HwConfig::small());
        let outer = build(&mut m, 0x10_0000, b"provider", ProcessId(0));
        let inner = build(&mut m, 0x20_0000, b"tenant", ProcessId(0));
        assoc(&mut m, inner, outer, AssocPolicy::SingleOuter).unwrap();
        assert_eq!(m.enclaves().get(inner).unwrap().outer_eids, vec![outer]);
        assert_eq!(m.enclaves().get(outer).unwrap().inner_eids, vec![inner]);
    }

    #[test]
    fn rogue_inner_rejected() {
        // § VII-B: the outer's file does not list the rogue inner's digest,
        // so the hardware refuses the join.
        let mut m = Machine::new(HwConfig::small());
        let outer = build(&mut m, 0x10_0000, b"provider", ProcessId(0));
        let victim_inner = build(&mut m, 0x20_0000, b"tenant", ProcessId(0));
        let rogue = build(&mut m, 0x30_0000, b"mallory", ProcessId(0));
        let oi = identity_of(&m, outer);
        let victim_id = identity_of(&m, victim_inner); // outer only authorizes the victim
        let err = nasso(
            &mut m,
            rogue,
            outer,
            &oi,
            &victim_id,
            AssocPolicy::SingleOuter,
        )
        .unwrap_err();
        assert!(matches!(err, SgxError::InitVerification(_)));
        assert!(m.enclaves().get(outer).unwrap().inner_eids.is_empty());
    }

    #[test]
    fn spoofed_outer_rejected() {
        let mut m = Machine::new(HwConfig::small());
        let real_outer = build(&mut m, 0x10_0000, b"provider", ProcessId(0));
        let fake_outer = build(&mut m, 0x30_0000, b"mallory", ProcessId(0));
        let inner = build(&mut m, 0x20_0000, b"tenant", ProcessId(0));
        let expected_real = identity_of(&m, real_outer); // inner expects the real provider
        let inner_id = identity_of(&m, inner);
        let err = nasso(
            &mut m,
            inner,
            fake_outer,
            &expected_real,
            &inner_id,
            AssocPolicy::SingleOuter,
        )
        .unwrap_err();
        assert!(matches!(err, SgxError::InitVerification(_)));
    }

    #[test]
    fn signer_policy_accepts_any_enclave_of_author() {
        let mut m = Machine::new(HwConfig::small());
        let outer = build(&mut m, 0x10_0000, b"provider", ProcessId(0));
        let inner = build(&mut m, 0x20_0000, b"tenant", ProcessId(0));
        let outer_mrs = m.enclaves().get(outer).unwrap().mrsigner;
        let inner_mrs = m.enclaves().get(inner).unwrap().mrsigner;
        nasso(
            &mut m,
            inner,
            outer,
            &ExpectedIdentity::signer(outer_mrs),
            &ExpectedIdentity::signer(inner_mrs),
            AssocPolicy::SingleOuter,
        )
        .unwrap();
    }

    #[test]
    fn single_outer_model_rejects_second_outer() {
        let mut m = Machine::new(HwConfig::small());
        let o1 = build(&mut m, 0x10_0000, b"p1", ProcessId(0));
        let o2 = build(&mut m, 0x30_0000, b"p2", ProcessId(0));
        let inner = build(&mut m, 0x20_0000, b"tenant", ProcessId(0));
        assoc(&mut m, inner, o1, AssocPolicy::SingleOuter).unwrap();
        let err = assoc(&mut m, inner, o2, AssocPolicy::SingleOuter).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn lattice_policy_allows_multiple_outers() {
        let mut m = Machine::new(HwConfig::small());
        let o1 = build(&mut m, 0x10_0000, b"p1", ProcessId(0));
        let o2 = build(&mut m, 0x30_0000, b"p2", ProcessId(0));
        let inner = build(&mut m, 0x20_0000, b"tenant", ProcessId(0));
        for o in [o1, o2] {
            assoc(&mut m, inner, o, AssocPolicy::Lattice).unwrap();
        }
        assert_eq!(m.enclaves().get(inner).unwrap().outer_eids, vec![o1, o2]);
    }

    #[test]
    fn duplicate_association_rejected() {
        let mut m = Machine::new(HwConfig::small());
        let o = build(&mut m, 0x10_0000, b"p", ProcessId(0));
        let inner = build(&mut m, 0x20_0000, b"t", ProcessId(0));
        assoc(&mut m, inner, o, AssocPolicy::Lattice).unwrap();
        let err = assoc(&mut m, inner, o, AssocPolicy::Lattice).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn cycle_rejected() {
        let mut m = Machine::new(HwConfig::small());
        let a = build(&mut m, 0x10_0000, b"a", ProcessId(0));
        let b = build(&mut m, 0x20_0000, b"b", ProcessId(0));
        assoc(&mut m, b, a, AssocPolicy::SingleOuter).unwrap();
        // Now try a → b: would make a cycle.
        let err = assoc(&mut m, a, b, AssocPolicy::SingleOuter).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn deep_cycle_rejected() {
        // a ← b ← c (b inner of a, c inner of b); then a → c must fail.
        let mut m = Machine::new(HwConfig::small());
        let a = build(&mut m, 0x10_0000, b"a", ProcessId(0));
        let b = build(&mut m, 0x20_0000, b"b", ProcessId(0));
        let c = build(&mut m, 0x30_0000, b"c", ProcessId(0));
        assoc(&mut m, b, a, AssocPolicy::SingleOuter).unwrap();
        assoc(&mut m, c, b, AssocPolicy::SingleOuter).unwrap();
        let err = assoc(&mut m, a, c, AssocPolicy::SingleOuter).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn self_association_rejected() {
        let mut m = Machine::new(HwConfig::small());
        let a = build(&mut m, 0x10_0000, b"a", ProcessId(0));
        let err = assoc(&mut m, a, a, AssocPolicy::SingleOuter).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn cross_process_association_rejected() {
        let mut m = Machine::new(HwConfig::small());
        let pid2 = m.spawn_process();
        let outer = build(&mut m, 0x10_0000, b"p", ProcessId(0));
        let inner = build(&mut m, 0x20_0000, b"t", pid2);
        let err = assoc(&mut m, inner, outer, AssocPolicy::SingleOuter).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn uninitialized_enclave_rejected() {
        let mut m = Machine::new(HwConfig::small());
        let outer = build(&mut m, 0x10_0000, b"p", ProcessId(0));
        let raw = m
            .ecreate(
                ProcessId(0),
                VirtRange::new(VirtAddr(0x20_0000), PAGE_SIZE as u64),
            )
            .unwrap();
        let oi = identity_of(&m, outer);
        let err = nasso(
            &mut m,
            raw,
            outer,
            &oi,
            &ExpectedIdentity::signer([0; 32]),
            AssocPolicy::SingleOuter,
        )
        .unwrap_err();
        assert!(matches!(err, SgxError::BadEnclaveState(_)));
    }

    #[test]
    fn empty_expectation_authorizes_nothing() {
        let e = ExpectedIdentity {
            mrenclave: None,
            mrsigner: None,
        };
        assert!(!e.matches(&[0; 32], &[0; 32]));
    }
}
