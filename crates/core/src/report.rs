//! `NEREPORT` — attestation extended with nesting relations (§ IV-E).
//!
//! "The current local and remote attestation only reports the measurement
//! of an individual enclave. However, to support nested enclave, the
//! attestation must be able to report the relationship between enclaves."
//! NEREPORT therefore returns the reporting enclave's measurement *plus*
//! the measurements and roles of every associated enclave, MACed with the
//! same per-target report-key hierarchy as EREPORT.

use ne_crypto::hmac::hmac_sha256;
use ne_crypto::Digest32;
use ne_sgx::attest::ReportData;
use ne_sgx::enclave::EnclaveId;
use ne_sgx::error::{Result, SgxError};
use ne_sgx::machine::Machine;

/// Role of a related enclave relative to the reporting enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// The related enclave is an outer enclave of the reporter.
    Outer,
    /// The related enclave is an inner enclave sharing the reporter.
    Inner,
}

/// One association record inside a nested report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationRecord {
    /// Role of the related enclave.
    pub relation: Relation,
    /// Its measurement.
    pub mrenclave: Digest32,
    /// Its signer identity.
    pub mrsigner: Digest32,
}

/// The NEREPORT output: an EREPORT body plus the association list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedReport {
    /// Measurement of the reporting enclave.
    pub mrenclave: Digest32,
    /// Signer of the reporting enclave.
    pub mrsigner: Digest32,
    /// Caller payload.
    pub report_data: ReportData,
    /// Immediate associations of the reporting enclave.
    pub relations: Vec<RelationRecord>,
    /// MAC over everything above, keyed for the target enclave.
    pub mac: [u8; 32],
}

fn body(
    mrenclave: &Digest32,
    mrsigner: &Digest32,
    report_data: &ReportData,
    relations: &[RelationRecord],
) -> Vec<u8> {
    let mut b = Vec::with_capacity(128 + relations.len() * 65);
    b.extend_from_slice(mrenclave);
    b.extend_from_slice(mrsigner);
    b.extend_from_slice(report_data);
    b.extend_from_slice(&(relations.len() as u32).to_le_bytes());
    for r in relations {
        b.push(match r.relation {
            Relation::Outer => 0,
            Relation::Inner => 1,
        });
        b.extend_from_slice(&r.mrenclave);
        b.extend_from_slice(&r.mrsigner);
    }
    b
}

/// Executes `NEREPORT` for the enclave running on `core`, targeting
/// `target`.
///
/// An attestation of an outer enclave reports "the measurements of all
/// inner enclaves sharing the outer enclave, in addition to the measurement
/// of the outer enclave"; an inner enclave reports its outer(s).
///
/// # Errors
///
/// General-protection fault outside enclave mode; fails if `target` is not
/// a live initialized enclave.
pub fn nereport(
    machine: &mut Machine,
    core: usize,
    target: EnclaveId,
    report_data: ReportData,
) -> Result<NestedReport> {
    let eid = machine
        .current_enclave(core)
        .ok_or_else(|| SgxError::GeneralProtection("NEREPORT outside enclave mode".into()))?;
    let (mrenclave, mrsigner, outers, inners) = {
        let secs = machine
            .enclaves()
            .get(eid)
            .expect("running enclave is live");
        (
            secs.mrenclave,
            secs.mrsigner,
            secs.outer_eids.clone(),
            secs.inner_eids.clone(),
        )
    };
    let mut relations = Vec::new();
    for (role, ids) in [(Relation::Outer, outers), (Relation::Inner, inners)] {
        for id in ids {
            if let Some(secs) = machine.enclaves().get(id) {
                relations.push(RelationRecord {
                    relation: role,
                    mrenclave: secs.mrenclave,
                    mrsigner: secs.mrsigner,
                });
            }
        }
    }
    let key = machine.derive_report_key(target)?;
    let mac = hmac_sha256(&key, &body(&mrenclave, &mrsigner, &report_data, &relations));
    Ok(NestedReport {
        mrenclave,
        mrsigner,
        report_data,
        relations,
        mac,
    })
}

/// Verifies a nested report from the enclave running on `core` (which must
/// have been the report's target).
///
/// # Errors
///
/// General-protection fault outside enclave mode.
pub fn verify_nested_report(
    machine: &mut Machine,
    core: usize,
    report: &NestedReport,
) -> Result<bool> {
    let eid = machine.current_enclave(core).ok_or_else(|| {
        SgxError::GeneralProtection("nested report verification outside enclave mode".into())
    })?;
    let key = machine.derive_report_key(eid)?;
    let expected = hmac_sha256(
        &key,
        &body(
            &report.mrenclave,
            &report.mrsigner,
            &report.report_data,
            &report.relations,
        ),
    );
    Ok(ne_crypto::ct::ct_eq(&expected, &report.mac))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nasso::{nasso, AssocPolicy, ExpectedIdentity};
    use ne_sgx::addr::{VirtAddr, VirtRange, PAGE_SIZE};
    use ne_sgx::config::HwConfig;
    use ne_sgx::enclave::{ProcessId, SigStruct};
    use ne_sgx::epcm::{PagePerms, PageType};
    use ne_sgx::instr::PageSource;

    fn build(m: &mut Machine, base: u64, signer: &[u8]) -> EnclaveId {
        let base = VirtAddr(base);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, 2 * PAGE_SIZE as u64))
            .unwrap();
        m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
        m.eadd(
            eid,
            base.add(PAGE_SIZE as u64),
            PageType::Reg,
            PageSource::Zeros,
            PagePerms::RW,
        )
        .unwrap();
        m.eextend(eid, base.add(PAGE_SIZE as u64)).unwrap();
        let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
        m.einit(eid, &SigStruct::new(signer, measured)).unwrap();
        eid
    }

    fn setup() -> (Machine, EnclaveId, EnclaveId, EnclaveId, EnclaveId) {
        let mut m = Machine::new(HwConfig::small());
        let outer = build(&mut m, 0x10_0000, b"provider");
        let i1 = build(&mut m, 0x20_0000, b"tenant1");
        let i2 = build(&mut m, 0x30_0000, b"tenant2");
        let verifier = build(&mut m, 0x40_0000, b"verifier");
        for inner in [i1, i2] {
            let oi = ExpectedIdentity::enclave(m.enclaves().get(outer).unwrap().mrenclave);
            let ii = ExpectedIdentity::enclave(m.enclaves().get(inner).unwrap().mrenclave);
            nasso(&mut m, inner, outer, &oi, &ii, AssocPolicy::SingleOuter).unwrap();
        }
        (m, outer, i1, i2, verifier)
    }

    #[test]
    fn outer_reports_all_inners() {
        let (mut m, outer, i1, i2, verifier) = setup();
        m.eenter(0, outer, VirtAddr(0x10_0000)).unwrap();
        let report = nereport(&mut m, 0, verifier, [0u8; 64]).unwrap();
        m.eexit(0).unwrap();
        assert_eq!(report.relations.len(), 2);
        let i1_mre = m.enclaves().get(i1).unwrap().mrenclave;
        let i2_mre = m.enclaves().get(i2).unwrap().mrenclave;
        assert!(report
            .relations
            .iter()
            .any(|r| r.relation == Relation::Inner && r.mrenclave == i1_mre));
        assert!(report
            .relations
            .iter()
            .any(|r| r.relation == Relation::Inner && r.mrenclave == i2_mre));
        // Verifier accepts.
        m.eenter(0, verifier, VirtAddr(0x40_0000)).unwrap();
        assert!(verify_nested_report(&mut m, 0, &report).unwrap());
    }

    #[test]
    fn inner_reports_its_outer() {
        let (mut m, outer, i1, _i2, verifier) = setup();
        m.eenter(0, i1, VirtAddr(0x20_0000)).unwrap();
        let report = nereport(&mut m, 0, verifier, [9u8; 64]).unwrap();
        m.eexit(0).unwrap();
        let outer_mre = m.enclaves().get(outer).unwrap().mrenclave;
        assert_eq!(report.relations.len(), 1);
        assert_eq!(report.relations[0].relation, Relation::Outer);
        assert_eq!(report.relations[0].mrenclave, outer_mre);
    }

    #[test]
    fn forged_relation_detected() {
        let (mut m, outer, _i1, _i2, verifier) = setup();
        m.eenter(0, outer, VirtAddr(0x10_0000)).unwrap();
        let mut report = nereport(&mut m, 0, verifier, [0u8; 64]).unwrap();
        m.eexit(0).unwrap();
        // OS tries to hide one inner enclave from the verifier.
        report.relations.pop();
        m.eenter(0, verifier, VirtAddr(0x40_0000)).unwrap();
        assert!(!verify_nested_report(&mut m, 0, &report).unwrap());
    }

    #[test]
    fn unassociated_enclave_reports_empty_relations() {
        let (mut m, _outer, _i1, _i2, verifier) = setup();
        let lone = build(&mut m, 0x50_0000, b"lone");
        m.eenter(0, lone, VirtAddr(0x50_0000)).unwrap();
        let report = nereport(&mut m, 0, verifier, [0u8; 64]).unwrap();
        assert!(report.relations.is_empty());
    }

    #[test]
    fn nereport_requires_enclave_mode() {
        let (mut m, _o, _i1, _i2, verifier) = setup();
        assert!(nereport(&mut m, 0, verifier, [0u8; 64]).is_err());
    }
}
