//! Enclave Definition Language model (§ IV-C "Building enclave binary").
//!
//! Nested enclave extends Intel's EDL with two interface classes:
//! `n_ecall` (outer → inner) and `n_ocall` (inner → outer). The runtime
//! refuses any call not declared here, and the interface is folded into the
//! enclave measurement, so a tampered interface changes MRENCLAVE.

use ne_crypto::sha256::Sha256;
use ne_crypto::Digest32;
use std::collections::BTreeSet;

/// The declared interface of one enclave.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Edl {
    /// Functions callable from untrusted code (classic ecalls).
    pub ecalls: BTreeSet<String>,
    /// Untrusted functions this enclave may call out to (classic ocalls).
    pub ocalls: BTreeSet<String>,
    /// Functions callable from this enclave's outer enclave (NEENTER path).
    pub n_ecalls: BTreeSet<String>,
    /// Outer-enclave functions this enclave may call (NEEXIT path).
    pub n_ocalls: BTreeSet<String>,
}

impl Edl {
    /// Empty interface.
    pub fn new() -> Edl {
        Edl::default()
    }

    /// Declares an ecall.
    pub fn ecall(mut self, name: &str) -> Edl {
        self.ecalls.insert(name.to_string());
        self
    }

    /// Declares an ocall.
    pub fn ocall(mut self, name: &str) -> Edl {
        self.ocalls.insert(name.to_string());
        self
    }

    /// Declares an n_ecall (outer may call this function in us).
    pub fn n_ecall(mut self, name: &str) -> Edl {
        self.n_ecalls.insert(name.to_string());
        self
    }

    /// Declares an n_ocall (we may call this function in our outer).
    pub fn n_ocall(mut self, name: &str) -> Edl {
        self.n_ocalls.insert(name.to_string());
        self
    }

    /// Deterministic digest of the interface, folded into the enclave
    /// measurement by the loader.
    pub fn digest(&self) -> Digest32 {
        let mut h = Sha256::new();
        for (tag, set) in [
            ("ecall", &self.ecalls),
            ("ocall", &self.ocalls),
            ("n_ecall", &self.n_ecalls),
            ("n_ocall", &self.n_ocalls),
        ] {
            h.update(tag.as_bytes());
            h.update(&(set.len() as u32).to_le_bytes());
            for name in set {
                h.update(&(name.len() as u32).to_le_bytes());
                h.update(name.as_bytes());
            }
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_independent_but_content_sensitive() {
        let a = Edl::new().ecall("f").ecall("g").n_ocall("lib");
        let b = Edl::new().ecall("g").n_ocall("lib").ecall("f");
        assert_eq!(a.digest(), b.digest(), "BTreeSet canonicalizes order");
        let c = Edl::new().ecall("f").ecall("h").n_ocall("lib");
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn interface_class_matters() {
        let a = Edl::new().ecall("f");
        let b = Edl::new().n_ecall("f");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn empty_digest_stable() {
        assert_eq!(Edl::new().digest(), Edl::default().digest());
    }
}
