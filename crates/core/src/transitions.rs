//! `NEENTER` / `NEEXIT` — direct inner↔outer transitions (Table I, § IV-B).
//!
//! These are the instructions that make nested enclaves cheap: switching
//! between an inner and its outer never drops to the untrusted context.
//! Both flush the TLB (translations of the two domains differ in what they
//! may contain) and both scrub the architectural registers when control
//! moves *down* a security level (inner → outer), so inner state cannot
//! leak.
//!
//! The pair supports both call directions of Fig. 5:
//!
//! * **outer calls inner (n_ecall)** — `NEENTER` acquires the inner's TCS,
//!   recording the outer context in it; the matching `NEEXIT` returns.
//! * **inner calls outer (n_ocall)** — `NEEXIT` suspends the inner thread
//!   in its own TCS (context saved in the SSA, TCS stays busy), acquires an
//!   idle TCS of the outer enclave, and records the inner context there;
//!   the matching `NEENTER` back into the busy-but-suspended inner TCS
//!   resumes it and releases the outer slot.

use ne_sgx::addr::VirtAddr;
use ne_sgx::enclave::{EnclaveId, SavedContext};
use ne_sgx::error::{Result, SgxError};
use ne_sgx::machine::{CoreMode, Machine};
use ne_sgx::trace::Event;

/// `NEENTER`: transitions `core` from its current (outer) enclave into the
/// inner enclave `inner` through the TCS at `tcs_va`.
///
/// Checks, per § IV-B: the core must be in enclave mode; the destination
/// enclave must exist and be an inner of the current enclave; the TCS must
/// belong to it and be idle — or be the suspended frame of an n_ocall this
/// thread is returning from. "Any invalid invocation results in a general
/// protection fault."
///
/// # Errors
///
/// [`SgxError::GeneralProtection`] on every invalid invocation.
pub fn neenter(
    machine: &mut Machine,
    core: usize,
    inner: EnclaveId,
    tcs_va: VirtAddr,
) -> Result<()> {
    let (outer_eid, outer_tcs) = match machine.core(core).mode {
        CoreMode::Enclave { eid, tcs } => (eid, tcs),
        CoreMode::NonEnclave => {
            return Err(SgxError::GeneralProtection(
                "NEENTER outside enclave mode".into(),
            ))
        }
    };
    {
        let secs = machine
            .enclaves()
            .get(inner)
            .ok_or(SgxError::NoSuchEnclave(inner))?;
        if !secs.is_initialized() {
            return Err(SgxError::GeneralProtection(
                "NEENTER into uninitialized enclave".into(),
            ));
        }
        if !secs.outer_eids.contains(&outer_eid) {
            return Err(SgxError::GeneralProtection(
                "NEENTER destination is not an inner enclave of the caller".into(),
            ));
        }
    }
    // A crashed inner enclave faults fresh entries until it is rebuilt
    // (same semantics as EENTER into a poisoned enclave).
    if machine.is_poisoned(inner) {
        return Err(SgxError::EnclavePoisoned(inner));
    }
    // Distinguish a fresh call from an n_ocall return: on return, the
    // *current outer* TCS carries a caller link pointing at `tcs_va`.
    let returning = machine
        .tcs(outer_eid, outer_tcs)
        .map(|t| t.caller == Some((inner, tcs_va)))
        .unwrap_or(false);
    if returning {
        let saved = {
            let inner_tcs = machine
                .tcs_mut(inner, tcs_va)
                .ok_or_else(|| SgxError::GeneralProtection("NEENTER with invalid TCS".into()))?;
            inner_tcs.ssa.take().ok_or_else(|| {
                SgxError::GeneralProtection("NEENTER return without suspended context".into())
            })?
        };
        // Release the outer slot acquired by the n_ocall.
        let outer_slot = machine.tcs_mut(outer_eid, outer_tcs).expect("checked");
        outer_slot.busy = false;
        outer_slot.caller = None;
        *machine.regs_mut(core) = saved;
        machine.flush_tlb(core);
        machine.set_core_mode(
            core,
            CoreMode::Enclave {
                eid: inner,
                tcs: tcs_va,
            },
        );
        if let Some(secs) = machine.enclaves_mut().get_mut(outer_eid) {
            secs.active_threads = secs.active_threads.saturating_sub(1);
        }
    } else {
        {
            let tcs = machine
                .tcs_mut(inner, tcs_va)
                .ok_or_else(|| SgxError::GeneralProtection("NEENTER with invalid TCS".into()))?;
            if tcs.busy {
                return Err(SgxError::GeneralProtection("NEENTER on busy TCS".into()));
            }
            tcs.busy = true;
            tcs.caller = Some((outer_eid, outer_tcs));
        }
        machine.flush_tlb(core);
        machine.set_core_mode(
            core,
            CoreMode::Enclave {
                eid: inner,
                tcs: tcs_va,
            },
        );
        machine
            .enclaves_mut()
            .get_mut(inner)
            .expect("validated above")
            .active_threads += 1;
    }
    machine.stats_mut().n_ecalls += 1;
    machine.record_event(Event::Neenter {
        core,
        from: outer_eid,
        to: inner,
    });
    Ok(())
}

/// `NEEXIT`: transitions `core` from an inner enclave to its outer
/// enclave, clearing "all the information of the inner enclave by flushing
/// the TLB and setting 0s for all registers".
///
/// Two shapes:
/// * **return** — the inner was NEENTERed; control goes back to the saved
///   outer context and the inner TCS becomes idle.
/// * **call (n_ocall)** — the inner thread suspends in place and acquires
///   an idle TCS of the (single) outer enclave. Lattice inners with several
///   outers must use [`neexit_to`].
///
/// # Errors
///
/// [`SgxError::GeneralProtection`] when the core is not in an inner
/// enclave, or no idle outer TCS exists on the call path.
pub fn neexit(machine: &mut Machine, core: usize) -> Result<()> {
    neexit_impl(machine, core, None)
}

/// [`neexit`] with an explicit outer target, for § VIII lattice inners
/// bound to several outer enclaves.
///
/// # Errors
///
/// See [`neexit`]; additionally faults if `outer` is not an outer enclave
/// of the caller.
pub fn neexit_to(machine: &mut Machine, core: usize, outer: EnclaveId) -> Result<()> {
    neexit_impl(machine, core, Some(outer))
}

fn neexit_impl(machine: &mut Machine, core: usize, target: Option<EnclaveId>) -> Result<()> {
    let (inner_eid, inner_tcs) = match machine.core(core).mode {
        CoreMode::Enclave { eid, tcs } => (eid, tcs),
        CoreMode::NonEnclave => {
            return Err(SgxError::GeneralProtection(
                "NEEXIT outside enclave mode".into(),
            ))
        }
    };
    let caller = machine
        .tcs(inner_eid, inner_tcs)
        .ok_or_else(|| SgxError::GeneralProtection("NEEXIT with missing TCS".into()))?
        .caller;
    let (outer_eid, outer_tcs, returning) = match caller {
        // Return path: go back where NEENTER came from (target, if given,
        // must agree).
        Some((o, ot)) => {
            if let Some(t) = target {
                if t != o {
                    return Err(SgxError::GeneralProtection(
                        "NEEXIT target does not match the NEENTER caller".into(),
                    ));
                }
            }
            (o, ot, true)
        }
        // Call path: pick the outer enclave and acquire one of its TCSes.
        None => {
            let outers = machine
                .enclaves()
                .get(inner_eid)
                .expect("running enclave is live")
                .outer_eids
                .clone();
            let o = match target {
                Some(t) => {
                    if !outers.contains(&t) {
                        return Err(SgxError::GeneralProtection(
                            "NEEXIT target is not an outer enclave of the caller".into(),
                        ));
                    }
                    t
                }
                None => match outers.as_slice() {
                    [] => {
                        return Err(SgxError::GeneralProtection(
                            "NEEXIT from an enclave with no outer enclave".into(),
                        ))
                    }
                    [single] => *single,
                    _ => {
                        return Err(SgxError::GeneralProtection(
                            "NEEXIT ambiguous: lattice inner must use neexit_to".into(),
                        ))
                    }
                },
            };
            let ot = machine.find_idle_tcs(o).ok_or_else(|| {
                SgxError::GeneralProtection("NEEXIT: no idle TCS in the outer enclave".into())
            })?;
            (o, ot, false)
        }
    };
    if returning {
        let tcs = machine.tcs_mut(inner_eid, inner_tcs).expect("checked");
        tcs.busy = false;
        tcs.ssa = None;
        tcs.caller = None;
        if let Some(secs) = machine.enclaves_mut().get_mut(inner_eid) {
            secs.active_threads = secs.active_threads.saturating_sub(1);
        }
    } else {
        // Suspend the inner thread in place; the outer slot remembers whom
        // to resume.
        let saved = *machine.regs_mut(core);
        machine.tcs_mut(inner_eid, inner_tcs).expect("checked").ssa = Some(saved);
        let outer_slot = machine.tcs_mut(outer_eid, outer_tcs).expect("idle TCS");
        outer_slot.busy = true;
        outer_slot.caller = Some((inner_eid, inner_tcs));
        machine
            .enclaves_mut()
            .get_mut(outer_eid)
            .expect("live")
            .active_threads += 1;
    }
    // Scrub all architectural registers before handing control down a
    // security level.
    *machine.regs_mut(core) = SavedContext::default();
    machine.flush_tlb(core);
    machine.set_core_mode(
        core,
        CoreMode::Enclave {
            eid: outer_eid,
            tcs: outer_tcs,
        },
    );
    machine.stats_mut().n_ocalls += 1;
    machine.record_event(Event::Neexit {
        core,
        from: inner_eid,
        to: outer_eid,
    });
    Ok(())
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::nasso::{nasso, AssocPolicy, ExpectedIdentity};
    use crate::validate::NestedValidator;
    use ne_sgx::addr::{VirtRange, PAGE_SIZE};
    use ne_sgx::config::HwConfig;
    use ne_sgx::enclave::{ProcessId, SigStruct};
    use ne_sgx::epcm::{PagePerms, PageType};
    use ne_sgx::instr::PageSource;

    fn build(m: &mut Machine, base: u64, signer: &[u8]) -> EnclaveId {
        let base = VirtAddr(base);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, 3 * PAGE_SIZE as u64))
            .unwrap();
        m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
        for i in 1..3u64 {
            m.eadd(
                eid,
                base.add(i * PAGE_SIZE as u64),
                PageType::Reg,
                PageSource::Zeros,
                PagePerms::RW,
            )
            .unwrap();
            m.eextend(eid, base.add(i * PAGE_SIZE as u64)).unwrap();
        }
        let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
        m.einit(eid, &SigStruct::new(signer, measured)).unwrap();
        eid
    }

    fn nested_machine() -> (Machine, EnclaveId, EnclaveId) {
        let mut m = Machine::with_validator(HwConfig::small(), Box::new(NestedValidator::new()));
        let outer = build(&mut m, 0x10_0000, b"provider");
        let inner = build(&mut m, 0x20_0000, b"tenant");
        let oi = ExpectedIdentity::enclave(m.enclaves().get(outer).unwrap().mrenclave);
        let ii = ExpectedIdentity::enclave(m.enclaves().get(inner).unwrap().mrenclave);
        nasso(&mut m, inner, outer, &oi, &ii, AssocPolicy::SingleOuter).unwrap();
        (m, outer, inner)
    }

    #[test]
    fn neenter_neexit_roundtrip() {
        let (mut m, outer, inner) = nested_machine();
        m.eenter(0, outer, VirtAddr(0x10_0000)).unwrap();
        neenter(&mut m, 0, inner, VirtAddr(0x20_0000)).unwrap();
        assert_eq!(m.current_enclave(0), Some(inner));
        neexit(&mut m, 0).unwrap();
        assert_eq!(m.current_enclave(0), Some(outer));
        m.eexit(0).unwrap();
        assert_eq!(m.current_enclave(0), None);
    }

    #[test]
    fn neenter_requires_enclave_mode() {
        let (mut m, _outer, inner) = nested_machine();
        let err = neenter(&mut m, 0, inner, VirtAddr(0x20_0000)).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn neenter_rejects_unrelated_enclave() {
        let (mut m, outer, _inner) = nested_machine();
        let stranger = build(&mut m, 0x30_0000, b"stranger");
        m.eenter(0, outer, VirtAddr(0x10_0000)).unwrap();
        let err = neenter(&mut m, 0, stranger, VirtAddr(0x30_0000)).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn direct_calls_among_peer_inners_rejected() {
        // § VII-B: "nested enclave never allow any direct calls among inner
        // enclaves" — a peer is not an inner of an inner.
        let (mut m, outer, inner) = nested_machine();
        let peer = build(&mut m, 0x30_0000, b"tenant2");
        let oi = ExpectedIdentity::enclave(m.enclaves().get(outer).unwrap().mrenclave);
        let pi = ExpectedIdentity::enclave(m.enclaves().get(peer).unwrap().mrenclave);
        nasso(&mut m, peer, outer, &oi, &pi, AssocPolicy::SingleOuter).unwrap();
        m.eenter(0, outer, VirtAddr(0x10_0000)).unwrap();
        neenter(&mut m, 0, inner, VirtAddr(0x20_0000)).unwrap();
        let err = neenter(&mut m, 0, peer, VirtAddr(0x30_0000)).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn neexit_scrubs_registers_and_flushes() {
        let (mut m, outer, inner) = nested_machine();
        m.eenter(0, outer, VirtAddr(0x10_0000)).unwrap();
        neenter(&mut m, 0, inner, VirtAddr(0x20_0000)).unwrap();
        m.set_reg(0, 0, 0x5EC2E7);
        // Populate the TLB from inner mode.
        m.read(0, VirtAddr(0x20_0000 + PAGE_SIZE as u64), 1)
            .unwrap();
        assert!(!m.core(0).tlb.is_empty());
        neexit(&mut m, 0).unwrap();
        assert_eq!(m.reg(0, 0), 0, "NEEXIT must zero registers");
        assert!(m.core(0).tlb.is_empty(), "NEEXIT must flush the TLB");
    }

    #[test]
    fn neexit_without_neenter_rejected() {
        let (mut m, outer, _inner) = nested_machine();
        m.eenter(0, outer, VirtAddr(0x10_0000)).unwrap();
        let err = neexit(&mut m, 0).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn busy_inner_tcs_rejected() {
        let (mut m, outer, inner) = nested_machine();
        m.eenter(0, outer, VirtAddr(0x10_0000)).unwrap();
        m.eenter(1, outer, VirtAddr(0x10_0000)).unwrap_err(); // outer TCS busy, expected
        neenter(&mut m, 0, inner, VirtAddr(0x20_0000)).unwrap();
        // Another core (entered outer via its own hypothetical TCS) cannot
        // NEENTER the same inner TCS; simulate by direct call from core 0's
        // perspective being busy:
        neexit(&mut m, 0).unwrap();
        neenter(&mut m, 0, inner, VirtAddr(0x20_0000)).unwrap();
        let err = neenter(&mut m, 0, inner, VirtAddr(0x20_0000)).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn inner_reads_outer_memory_after_neenter() {
        let (mut m, outer, inner) = nested_machine();
        let outer_data = VirtAddr(0x10_0000 + PAGE_SIZE as u64);
        m.eenter(0, outer, VirtAddr(0x10_0000)).unwrap();
        m.write(0, outer_data, b"shared by outer").unwrap();
        neenter(&mut m, 0, inner, VirtAddr(0x20_0000)).unwrap();
        assert_eq!(m.read(0, outer_data, 15).unwrap(), b"shared by outer");
        m.audit_tlbs().unwrap();
        // And the outer cannot read inner memory.
        let inner_data = VirtAddr(0x20_0000 + PAGE_SIZE as u64);
        m.write(0, inner_data, b"inner secret").unwrap();
        neexit(&mut m, 0).unwrap();
        let err = m.read(0, inner_data, 12).unwrap_err();
        assert!(matches!(err, SgxError::Fault { .. }));
        m.audit_tlbs().unwrap();
    }

    #[test]
    fn stats_count_nested_transitions() {
        let (mut m, outer, inner) = nested_machine();
        m.eenter(0, outer, VirtAddr(0x10_0000)).unwrap();
        for _ in 0..5 {
            neenter(&mut m, 0, inner, VirtAddr(0x20_0000)).unwrap();
            neexit(&mut m, 0).unwrap();
        }
        assert_eq!(m.stats().n_ecalls, 5);
        assert_eq!(m.stats().n_ocalls, 5);
    }
}
