//! Enclave images and the loader (§ IV-C "Initialization").
//!
//! An [`EnclaveImage`] plays the role of the signed enclave file: it fixes
//! the memory layout, carries the author identity, the EDL interface, and —
//! the nested-enclave addition — the *expected identities* of counterpart
//! enclaves that NASSO validates at association time.
//!
//! Layout of a loaded enclave (page granularity):
//!
//! ```text
//! base ┌──────────────┐
//!      │ TCS          │ 1 page
//!      ├──────────────┤
//!      │ code         │ code_pages (RX, opaque content seeded by identity)
//!      ├──────────────┤
//!      │ data         │ ceil(data.len() / 4096) pages (RW, measured bytes)
//!      ├──────────────┤
//!      │ heap         │ heap_pages (RW, zeros)
//!      └──────────────┘
//! ```

use crate::edl::Edl;
use crate::nasso::ExpectedIdentity;
use ne_crypto::Digest32;
use ne_sgx::addr::{VirtAddr, VirtRange, PAGE_SIZE};
use ne_sgx::enclave::{EnclaveId, Measurement, ProcessId, SigStruct};
use ne_sgx::epcm::{PagePerms, PageType};
use ne_sgx::error::Result;
use ne_sgx::instr::PageSource;
use ne_sgx::machine::Machine;

/// A signed enclave file.
#[derive(Debug, Clone)]
pub struct EnclaveImage {
    /// Human-readable enclave name (part of the code identity).
    pub name: String,
    /// Author identity (becomes MRSIGNER).
    pub signer: Vec<u8>,
    /// Number of code pages (content identified by the image identity but
    /// kept opaque — see [`PageSource::Opaque`]).
    pub code_pages: u64,
    /// Initial data segment (real, measured bytes).
    pub data: Vec<u8>,
    /// Heap pages (zero-initialized).
    pub heap_pages: u64,
    /// ELRANGE pages reserved past the heap for SGX2 dynamic growth
    /// (EAUG/EACCEPT); not EADDed and therefore not measured.
    pub reserve_pages: u64,
    /// Declared interface.
    pub edl: Edl,
    /// NASSO expectation: identity of the outer enclave this image may bind
    /// to (present only in inner-enclave files).
    pub expected_outer: Option<ExpectedIdentity>,
    /// NASSO expectation: identities of inner enclaves allowed to join
    /// (present only in outer-enclave files).
    pub expected_inners: Vec<ExpectedIdentity>,
}

impl EnclaveImage {
    /// Creates an image with one heap page and no data segment.
    pub fn new(name: &str, signer: &[u8]) -> EnclaveImage {
        EnclaveImage {
            name: name.to_string(),
            signer: signer.to_vec(),
            code_pages: 4,
            data: Vec::new(),
            heap_pages: 1,
            reserve_pages: 0,
            edl: Edl::new(),
            expected_outer: None,
            expected_inners: Vec::new(),
        }
    }

    /// Sets the code-segment size in pages.
    pub fn code_pages(mut self, pages: u64) -> EnclaveImage {
        assert!(pages > 0, "an enclave needs at least one code page");
        self.code_pages = pages;
        self
    }

    /// Sets the initial data segment.
    pub fn data(mut self, data: Vec<u8>) -> EnclaveImage {
        self.data = data;
        self
    }

    /// Sets the heap size in pages.
    pub fn heap_pages(mut self, pages: u64) -> EnclaveImage {
        self.heap_pages = pages;
        self
    }

    /// Reserves unmeasured ELRANGE pages for SGX2 dynamic heap growth.
    pub fn reserve_pages(mut self, pages: u64) -> EnclaveImage {
        self.reserve_pages = pages;
        self
    }

    /// Sets the EDL interface.
    pub fn edl(mut self, edl: Edl) -> EnclaveImage {
        self.edl = edl;
        self
    }

    /// Embeds the expected outer identity (inner-enclave files).
    pub fn expect_outer(mut self, id: ExpectedIdentity) -> EnclaveImage {
        self.expected_outer = Some(id);
        self
    }

    /// Embeds an allowed inner identity (outer-enclave files).
    pub fn expect_inner(mut self, id: ExpectedIdentity) -> EnclaveImage {
        self.expected_inners.push(id);
        self
    }

    /// Pages occupied by the data segment.
    pub fn data_pages(&self) -> u64 {
        (self.data.len() as u64).div_ceil(PAGE_SIZE as u64)
    }

    /// Total ELRANGE pages (TCS + code + data + heap + dynamic reserve).
    pub fn total_pages(&self) -> u64 {
        1 + self.code_pages + self.data_pages() + self.heap_pages + self.reserve_pages
    }

    /// Total image bytes (Fig. 10 footprint accounting).
    pub fn footprint_bytes(&self) -> u64 {
        self.total_pages() * PAGE_SIZE as u64
    }

    /// Seed identifying the content of code page `idx` — a function of the
    /// enclave name and interface, so different libraries measure
    /// differently.
    fn code_seed(&self, idx: u64) -> u64 {
        let mut h = ne_crypto::sha256::Sha256::new();
        h.update(self.name.as_bytes());
        h.update(&self.edl.digest());
        h.update(&idx.to_le_bytes());
        let d = h.finalize();
        u64::from_le_bytes(d[..8].try_into().expect("8 bytes"))
    }

    /// Replays the measurement the loader will produce at `base`, without
    /// touching a machine. This is what lets one enclave's file embed the
    /// *expected* MRENCLAVE of a counterpart that has not been loaded yet.
    pub fn expected_mrenclave(&self, base: VirtAddr) -> Digest32 {
        let mut m = Measurement::new();
        m.ecreate(VirtRange::new(base, self.total_pages() * PAGE_SIZE as u64));
        let mut offset = 0u64;
        // TCS page: EADD only, matching `Machine::add_tcs`.
        m.eadd(offset, 1, perm_bits(PagePerms::RW));
        offset += PAGE_SIZE as u64;
        for i in 0..self.code_pages {
            m.eadd(offset, 2, perm_bits(PagePerms::RX));
            m.eextend(
                offset,
                &PageSource::Opaque {
                    seed: self.code_seed(i),
                }
                .content_digest(),
            );
            offset += PAGE_SIZE as u64;
        }
        for chunk in self.data.chunks(PAGE_SIZE) {
            m.eadd(offset, 2, perm_bits(PagePerms::RW));
            m.eextend(offset, &PageSource::Image(chunk.to_vec()).content_digest());
            offset += PAGE_SIZE as u64;
        }
        for _ in 0..self.heap_pages {
            m.eadd(offset, 2, perm_bits(PagePerms::RW));
            m.eextend(offset, &PageSource::Zeros.content_digest());
            offset += PAGE_SIZE as u64;
        }
        m.finalize()
    }

    /// The SIGSTRUCT shipped in this file for a load at `base`.
    pub fn sigstruct(&self, base: VirtAddr) -> SigStruct {
        SigStruct::new(&self.signer, self.expected_mrenclave(base))
    }

    /// The identity NASSO counterparts should expect of this image loaded
    /// at `base`.
    pub fn identity(&self, base: VirtAddr) -> ExpectedIdentity {
        ExpectedIdentity::enclave(self.expected_mrenclave(base))
    }
}

fn perm_bits(p: PagePerms) -> u8 {
    (p.r as u8) | ((p.w as u8) << 1) | ((p.x as u8) << 2)
}

/// Result of loading an image: ids and layout facts the runtime needs.
#[derive(Debug, Clone)]
pub struct LoadedLayout {
    /// The created enclave.
    pub eid: EnclaveId,
    /// ELRANGE base (also the TCS page).
    pub base: VirtAddr,
    /// Entry point (first code page).
    pub entry: VirtAddr,
    /// First data-segment address.
    pub data_base: VirtAddr,
    /// First heap address.
    pub heap_base: VirtAddr,
    /// Heap size in bytes.
    pub heap_len: u64,
}

/// Loads `image` into process `pid` at `base`: ECREATE, EADD+EEXTEND of
/// every page, EINIT against the image's SIGSTRUCT.
///
/// # Errors
///
/// Any life-cycle error from the underlying instructions (EPC exhaustion,
/// range conflicts, measurement mismatch).
pub fn load_image(
    machine: &mut Machine,
    pid: ProcessId,
    base: VirtAddr,
    image: &EnclaveImage,
) -> Result<LoadedLayout> {
    let total = image.total_pages() * PAGE_SIZE as u64;
    let eid = machine.ecreate(pid, VirtRange::new(base, total))?;
    let mut va = base;
    let entry = base.add(PAGE_SIZE as u64);
    machine.add_tcs(eid, va, entry)?;
    va = va.add(PAGE_SIZE as u64);
    for i in 0..image.code_pages {
        machine.eadd(
            eid,
            va,
            PageType::Reg,
            PageSource::Opaque {
                seed: image.code_seed(i),
            },
            PagePerms::RX,
        )?;
        machine.eextend(eid, va)?;
        va = va.add(PAGE_SIZE as u64);
    }
    let data_base = va;
    for chunk in image.data.chunks(PAGE_SIZE) {
        machine.eadd(
            eid,
            va,
            PageType::Reg,
            PageSource::Image(chunk.to_vec()),
            PagePerms::RW,
        )?;
        machine.eextend(eid, va)?;
        va = va.add(PAGE_SIZE as u64);
    }
    let heap_base = va;
    for _ in 0..image.heap_pages {
        machine.eadd(eid, va, PageType::Reg, PageSource::Zeros, PagePerms::RW)?;
        machine.eextend(eid, va)?;
        va = va.add(PAGE_SIZE as u64);
    }
    machine.einit(eid, &image.sigstruct(base))?;
    Ok(LoadedLayout {
        eid,
        base,
        entry,
        data_base,
        heap_base,
        heap_len: image.heap_pages * PAGE_SIZE as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ne_sgx::config::HwConfig;

    fn image() -> EnclaveImage {
        EnclaveImage::new("app", b"acme")
            .code_pages(2)
            .data(b"initial config".to_vec())
            .heap_pages(2)
            .edl(Edl::new().ecall("run"))
    }

    #[test]
    fn expected_measurement_matches_load() {
        let mut m = Machine::new(HwConfig::small());
        let img = image();
        let base = VirtAddr(0x10_0000);
        let predicted = img.expected_mrenclave(base);
        let layout = load_image(&mut m, ProcessId(0), base, &img).unwrap();
        let actual = m.enclaves().get(layout.eid).unwrap().mrenclave;
        assert_eq!(predicted, actual, "replay must match the real load");
    }

    #[test]
    fn measurement_is_base_independent() {
        // SGX measures SECS.SIZE and base-relative page offsets, never
        // the load address: the same image at a different base is the
        // same identity. Live migration leans on this — the rebuilt
        // enclave on the target lands wherever that machine's allocator
        // puts it yet must derive the same seal key.
        let img = image();
        assert_eq!(
            img.expected_mrenclave(VirtAddr(0x10_0000)),
            img.expected_mrenclave(VirtAddr(0x20_0000)),
            "identity must be load-position-independent"
        );
    }

    #[test]
    fn measurement_depends_on_name_and_edl() {
        let a = image();
        let mut b = image();
        b.name = "app2".into();
        assert_ne!(
            a.expected_mrenclave(VirtAddr(0x10_0000)),
            b.expected_mrenclave(VirtAddr(0x10_0000))
        );
        let c = image().edl(Edl::new().ecall("run").ecall("extra"));
        assert_ne!(
            a.expected_mrenclave(VirtAddr(0x10_0000)),
            c.expected_mrenclave(VirtAddr(0x10_0000))
        );
    }

    #[test]
    fn measurement_depends_on_data() {
        let a = image();
        let b = image().data(b"different config".to_vec());
        assert_ne!(
            a.expected_mrenclave(VirtAddr(0x10_0000)),
            b.expected_mrenclave(VirtAddr(0x10_0000))
        );
    }

    #[test]
    fn layout_is_contiguous() {
        let mut m = Machine::new(HwConfig::small());
        let img = image();
        let base = VirtAddr(0x10_0000);
        let l = load_image(&mut m, ProcessId(0), base, &img).unwrap();
        assert_eq!(l.entry, base.add(PAGE_SIZE as u64));
        assert_eq!(l.data_base, base.add(3 * PAGE_SIZE as u64));
        assert_eq!(l.heap_base, base.add(4 * PAGE_SIZE as u64));
        assert_eq!(l.heap_len, 2 * PAGE_SIZE as u64);
        assert_eq!(img.total_pages(), 6);
    }

    #[test]
    fn loaded_data_readable_from_inside() {
        let mut m = Machine::new(HwConfig::small());
        let img = image();
        let base = VirtAddr(0x10_0000);
        let l = load_image(&mut m, ProcessId(0), base, &img).unwrap();
        m.eenter(0, l.eid, l.base).unwrap();
        assert_eq!(m.read(0, l.data_base, 14).unwrap(), b"initial config");
        m.eexit(0).unwrap();
    }

    #[test]
    fn code_pages_are_executable_data_pages_not() {
        let mut m = Machine::new(HwConfig::small());
        let l = load_image(&mut m, ProcessId(0), VirtAddr(0x10_0000), &image()).unwrap();
        m.eenter(0, l.eid, l.base).unwrap();
        m.fetch(0, l.entry).unwrap();
        assert!(m.fetch(0, l.heap_base).is_err());
    }
}
