//! Inter-enclave communication channels (§ VI-C, Fig. 11).
//!
//! Two implementations of the same message-queue interface:
//!
//! * [`OuterChannel`] — the nested-enclave way: a ring buffer placed in the
//!   *outer enclave's* heap. Peer inner enclaves read and write it directly
//!   through the hardware-validated path; the MEE protects it from the
//!   untrusted world at cache-line granularity, and no software crypto runs
//!   at all. When the working set fits in the LLC, even the MEE stays idle.
//! * [`UntrustedChannel`] — the monolithic-SGX baseline: a ring buffer in
//!   untrusted memory, every message sealed/opened with AES-GCM. The OS can
//!   observe, drop, and replay the ciphertexts (Panoply's attack surface,
//!   § VII-B) — dropping is silent, replay is detected by sequence numbers.

use crate::runtime::{EnclaveCtx, UntrustedCtx};
use ne_crypto::gcm::AesGcm;
use ne_sgx::addr::VirtAddr;
use ne_sgx::error::{Result, SgxError};

/// Byte offset of the head counter within a channel header.
const HEAD_OFF: u64 = 0;
/// Byte offset of the tail counter (separate cache line from the head).
const TAIL_OFF: u64 = 64;
/// Start of the data region.
const DATA_OFF: u64 = 128;

/// A ring-buffer message queue at a fixed virtual address. Both channel
/// flavors share this layout; they differ in *where* the memory lives and
/// what wraps the payload.
#[derive(Debug, Clone, Copy)]
struct Ring {
    base: VirtAddr,
    capacity: u64,
}

/// Memory-access facade so the ring code works from enclave and untrusted
/// contexts alike.
trait Mem {
    fn m_read(&mut self, va: VirtAddr, len: usize) -> Result<Vec<u8>>;
    fn m_write(&mut self, va: VirtAddr, data: &[u8]) -> Result<()>;
}

impl Mem for EnclaveCtx<'_> {
    fn m_read(&mut self, va: VirtAddr, len: usize) -> Result<Vec<u8>> {
        self.read(va, len)
    }
    fn m_write(&mut self, va: VirtAddr, data: &[u8]) -> Result<()> {
        self.write(va, data)
    }
}

impl Mem for UntrustedCtx<'_> {
    fn m_read(&mut self, va: VirtAddr, len: usize) -> Result<Vec<u8>> {
        self.read(va, len)
    }
    fn m_write(&mut self, va: VirtAddr, data: &[u8]) -> Result<()> {
        self.write(va, data)
    }
}

impl Ring {
    fn read_u64<M: Mem>(mem: &mut M, va: VirtAddr) -> Result<u64> {
        let b = mem.m_read(va, 8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn write_u64<M: Mem>(mem: &mut M, va: VirtAddr, v: u64) -> Result<()> {
        mem.m_write(va, &v.to_le_bytes())
    }

    fn data_va(&self, logical: u64) -> VirtAddr {
        self.base.add(DATA_OFF + logical % self.capacity)
    }

    /// Copies `data` into the ring at logical position `pos`, handling wrap.
    fn put<M: Mem>(&self, mem: &mut M, pos: u64, data: &[u8]) -> Result<()> {
        let first = ((self.capacity - pos % self.capacity) as usize).min(data.len());
        mem.m_write(self.data_va(pos), &data[..first])?;
        if first < data.len() {
            mem.m_write(self.base.add(DATA_OFF), &data[first..])?;
        }
        Ok(())
    }

    /// Copies `len` bytes out of the ring from logical position `pos`.
    fn get<M: Mem>(&self, mem: &mut M, pos: u64, len: usize) -> Result<Vec<u8>> {
        let first = ((self.capacity - pos % self.capacity) as usize).min(len);
        let mut out = mem.m_read(self.data_va(pos), first)?;
        if first < len {
            out.extend(mem.m_read(self.base.add(DATA_OFF), len - first)?);
        }
        Ok(out)
    }

    fn send<M: Mem>(&self, mem: &mut M, msg: &[u8]) -> Result<()> {
        let head = Self::read_u64(mem, self.base.add(HEAD_OFF))?;
        let tail = Self::read_u64(mem, self.base.add(TAIL_OFF))?;
        let needed = 4 + msg.len() as u64;
        if tail - head + needed > self.capacity {
            return Err(SgxError::GeneralProtection("channel full".into()));
        }
        self.put(mem, tail, &(msg.len() as u32).to_le_bytes())?;
        self.put(mem, tail + 4, msg)?;
        Self::write_u64(mem, self.base.add(TAIL_OFF), tail + needed)
    }

    fn recv<M: Mem>(&self, mem: &mut M) -> Result<Option<Vec<u8>>> {
        let head = Self::read_u64(mem, self.base.add(HEAD_OFF))?;
        let tail = Self::read_u64(mem, self.base.add(TAIL_OFF))?;
        if head == tail {
            return Ok(None);
        }
        let len_bytes = self.get(mem, head, 4)?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let msg = self.get(mem, head + 4, len)?;
        Self::write_u64(mem, self.base.add(HEAD_OFF), head + 4 + len as u64)?;
        Ok(Some(msg))
    }
}

/// A message channel through the shared outer enclave (§ VI-C).
///
/// "Because the outer enclave is protected from the untrusted world, inner
/// enclaves can build a fast message passing system among inner enclaves
/// without encrypting/decrypting data."
#[derive(Debug, Clone, Copy)]
pub struct OuterChannel {
    ring: Ring,
}

impl OuterChannel {
    /// Creates a channel of `capacity` data bytes inside the heap of
    /// `outer` (the caller must be the outer enclave itself or one of its
    /// inners — anything the hardware lets allocate-and-touch that heap).
    ///
    /// # Errors
    ///
    /// Fails when the outer heap cannot fit the ring.
    pub fn create(cx: &mut EnclaveCtx<'_>, outer: &str, capacity: u64) -> Result<OuterChannel> {
        let base = cx.alloc_in(outer, (DATA_OFF + capacity) as usize)?;
        let channel = OuterChannel {
            ring: Ring { base, capacity },
        };
        // Zero the counters through the validated path.
        Ring::write_u64(cx, base.add(HEAD_OFF), 0)?;
        Ring::write_u64(cx, base.add(TAIL_OFF), 0)?;
        Ok(channel)
    }

    /// Reopens a channel created elsewhere from its base address (peers
    /// learn the address through an n_ecall argument or outer-enclave
    /// rendezvous).
    pub fn from_raw(base: VirtAddr, capacity: u64) -> OuterChannel {
        OuterChannel {
            ring: Ring { base, capacity },
        }
    }

    /// The channel's base address (for handing to a peer).
    pub fn base(&self) -> VirtAddr {
        self.ring.base
    }

    /// Data capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.ring.capacity
    }

    /// Sends `msg`. No software crypto: the write lands in the outer
    /// enclave's EPC pages, protected by the MEE.
    ///
    /// # Errors
    ///
    /// `channel full`, or an access fault if the caller is not entitled to
    /// the outer enclave's memory.
    pub fn send(&self, cx: &mut EnclaveCtx<'_>, msg: &[u8]) -> Result<()> {
        self.ring.send(cx, msg)
    }

    /// Receives the next message, if any.
    ///
    /// # Errors
    ///
    /// Access faults for unauthorized callers.
    pub fn recv(&self, cx: &mut EnclaveCtx<'_>) -> Result<Option<Vec<u8>>> {
        self.ring.recv(cx)
    }
}

/// The baseline channel: ciphertext ring in untrusted memory (§ VI-C).
///
/// Messages are AES-GCM sealed with a pre-shared key (established out of
/// band via local attestation) and stamped with a sequence number. Replayed
/// or reordered ciphertexts fail authentication; *silently dropped*
/// messages are indistinguishable from "nothing sent yet" — exactly the
/// Panoply attack nested enclave closes.
#[derive(Debug)]
pub struct UntrustedChannel {
    ring: Ring,
    cipher: AesGcm,
    send_seq: u64,
    recv_seq: u64,
    os_drop_next: bool,
}

impl UntrustedChannel {
    /// Allocates the ring in untrusted memory and wraps it with `key`.
    pub fn create(cx: &mut UntrustedCtx<'_>, key: [u8; 16], capacity: u64) -> UntrustedChannel {
        let pages = ((DATA_OFF + capacity) as usize).div_ceil(ne_sgx::PAGE_SIZE);
        let base = cx.alloc_untrusted(pages);
        UntrustedChannel {
            ring: Ring { base, capacity },
            cipher: AesGcm::new(&key),
            send_seq: 0,
            recv_seq: 0,
            os_drop_next: false,
        }
    }

    /// OS attack hook: silently discard the next message in flight.
    pub fn os_drop_next(&mut self) {
        self.os_drop_next = true;
    }

    /// Sends `msg` from an enclave: seal, then write ciphertext to the
    /// untrusted ring. Charges the software-crypto cost (Fig. 11's `GCM`).
    ///
    /// # Errors
    ///
    /// `channel full`.
    pub fn send(&mut self, cx: &mut EnclaveCtx<'_>, msg: &[u8]) -> Result<()> {
        let cost = cx.machine.config().cost.clone();
        cx.charge(cost.gcm_setup + cost.gcm_per_byte * msg.len() as u64);
        let nonce = Self::nonce(self.send_seq);
        let sealed = self.cipher.seal(&nonce, msg, &self.send_seq.to_le_bytes());
        self.send_seq += 1;
        if self.os_drop_next {
            // The OS controls the transport; the message never lands and
            // nobody is told.
            self.os_drop_next = false;
            return Ok(());
        }
        self.ring.send(cx, &sealed)
    }

    /// Receives and opens the next message.
    ///
    /// # Errors
    ///
    /// Authentication failure on forged/replayed/reordered ciphertexts.
    pub fn recv(&mut self, cx: &mut EnclaveCtx<'_>) -> Result<Option<Vec<u8>>> {
        let sealed = match self.ring.recv(cx)? {
            Some(s) => s,
            None => return Ok(None),
        };
        let cost = cx.machine.config().cost.clone();
        cx.charge(cost.gcm_setup + cost.gcm_per_byte * sealed.len() as u64);
        let nonce = Self::nonce(self.recv_seq);
        let msg = self
            .cipher
            .open(&nonce, &sealed, &self.recv_seq.to_le_bytes())
            .map_err(|_| {
                SgxError::GeneralProtection(
                    "channel message failed authentication (replay/forgery)".into(),
                )
            })?;
        self.recv_seq += 1;
        Ok(Some(msg))
    }

    /// The ring's base address (visible to the OS — it is untrusted
    /// memory).
    pub fn base(&self) -> VirtAddr {
        self.ring.base
    }

    fn nonce(seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&seq.to_le_bytes());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edl::Edl;
    use crate::loader::EnclaveImage;
    use crate::runtime::{NestedApp, TrustedFn};
    use ne_sgx::config::HwConfig;
    use std::sync::Arc;

    /// Builds outer "hub" with two inner enclaves "a" and "b". Each inner
    /// exposes `put`/`take` ecalls that talk over a channel whose base is
    /// stashed in a global the test threads through arguments instead.
    fn app_with_inners() -> NestedApp {
        let mut app = NestedApp::new(HwConfig::small());
        let hub = EnclaveImage::new("hub", b"provider").heap_pages(8);
        app.load(hub, []).unwrap();
        for name in ["a", "b"] {
            let img = EnclaveImage::new(name, b"tenant")
                .heap_pages(2)
                .edl(Edl::new().ecall("mk").ecall("put").ecall("take"));
            let mk: TrustedFn = Arc::new(|cx, args| {
                let cap = u64::from_le_bytes(args.try_into().expect("8"));
                let ch = OuterChannel::create(cx, "hub", cap)?;
                Ok(ch.base().0.to_le_bytes().to_vec())
            });
            let put: TrustedFn = Arc::new(|cx, args| {
                let base = u64::from_le_bytes(args[..8].try_into().expect("8"));
                let cap = u64::from_le_bytes(args[8..16].try_into().expect("8"));
                let ch = OuterChannel::from_raw(VirtAddr(base), cap);
                ch.send(cx, &args[16..])?;
                Ok(vec![])
            });
            let take: TrustedFn = Arc::new(|cx, args| {
                let base = u64::from_le_bytes(args[..8].try_into().expect("8"));
                let cap = u64::from_le_bytes(args[8..16].try_into().expect("8"));
                let ch = OuterChannel::from_raw(VirtAddr(base), cap);
                Ok(ch.recv(cx)?.unwrap_or_default())
            });
            app.load(
                img,
                [
                    ("mk".to_string(), mk),
                    ("put".to_string(), put),
                    ("take".to_string(), take),
                ],
            )
            .unwrap();
            app.associate(name, "hub").unwrap();
        }
        app
    }

    #[test]
    fn inner_to_inner_through_outer() {
        let mut app = app_with_inners();
        let cap = 1024u64;
        let base = app.ecall(0, "a", "mk", &cap.to_le_bytes()).unwrap();
        let mut put_args = base.clone();
        put_args.extend_from_slice(&cap.to_le_bytes());
        put_args.extend_from_slice(b"hello peer");
        app.ecall(0, "a", "put", &put_args).unwrap();
        let mut take_args = base;
        take_args.extend_from_slice(&cap.to_le_bytes());
        let got = app.ecall(0, "b", "take", &take_args).unwrap();
        assert_eq!(got, b"hello peer");
    }

    #[test]
    fn os_cannot_observe_outer_channel() {
        let mut app = app_with_inners();
        let cap = 1024u64;
        let base = app.ecall(0, "a", "mk", &cap.to_le_bytes()).unwrap();
        let mut put_args = base.clone();
        put_args.extend_from_slice(&cap.to_le_bytes());
        put_args.extend_from_slice(b"CHANNEL-SECRET");
        app.ecall(0, "a", "put", &put_args).unwrap();
        let base_va = VirtAddr(u64::from_le_bytes(base.try_into().expect("8")));
        let snooped = app.untrusted(0, |cx| cx.read(base_va.add(DATA_OFF), 32).unwrap());
        assert_eq!(snooped, vec![0xFF; 32], "OS sees only abort-page ones");
    }

    #[test]
    fn ring_wraparound() {
        let mut app = app_with_inners();
        let cap = 64u64; // tiny ring to force wrap
        let base = app.ecall(0, "a", "mk", &cap.to_le_bytes()).unwrap();
        for round in 0..10u8 {
            let msg = vec![round; 24];
            let mut put_args = base.clone();
            put_args.extend_from_slice(&cap.to_le_bytes());
            put_args.extend_from_slice(&msg);
            app.ecall(0, "a", "put", &put_args).unwrap();
            let mut take_args = base.clone();
            take_args.extend_from_slice(&cap.to_le_bytes());
            let got = app.ecall(0, "b", "take", &take_args).unwrap();
            assert_eq!(got, msg, "round {round}");
        }
    }

    #[test]
    fn channel_full_reported() {
        let mut app = app_with_inners();
        let cap = 64u64;
        let base = app.ecall(0, "a", "mk", &cap.to_le_bytes()).unwrap();
        let mut put_args = base.clone();
        put_args.extend_from_slice(&cap.to_le_bytes());
        put_args.extend_from_slice(&[9u8; 61]); // 4 + 61 > 64
        let err = app.ecall(0, "a", "put", &put_args).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    /// Untrusted-channel tests run between two plain enclaves.
    fn gcm_pair() -> NestedApp {
        let mut app = NestedApp::new(HwConfig::small());
        for name in ["tx", "rx"] {
            let img = EnclaveImage::new(name, b"owner")
                .heap_pages(1)
                .edl(Edl::new().ecall("noop"));
            app.load(
                img,
                [(
                    "noop".to_string(),
                    Arc::new(|_: &mut EnclaveCtx<'_>, _: &[u8]| Ok(vec![])) as TrustedFn,
                )],
            )
            .unwrap();
        }
        app
    }

    #[test]
    fn untrusted_channel_roundtrip_and_replay_detection() {
        let mut app = gcm_pair();
        let key = [7u8; 16];
        let mut ch = app.untrusted(0, |cx| UntrustedChannel::create(cx, key, 4096));
        let tx = app.eid("tx").unwrap();
        let tx_base = app.layout("tx").unwrap().base;
        app.machine.eenter(0, tx, tx_base).unwrap();
        {
            let mut cx = test_ctx(&mut app, 0, "tx");
            ch.send(&mut cx, b"msg one").unwrap();
            ch.send(&mut cx, b"msg two").unwrap();
            let got = ch.recv(&mut cx).unwrap().unwrap();
            assert_eq!(got, b"msg one");
            let got = ch.recv(&mut cx).unwrap().unwrap();
            assert_eq!(got, b"msg two");
            assert_eq!(ch.recv(&mut cx).unwrap(), None);
        }
        app.machine.eexit(0).unwrap();
    }

    #[test]
    fn os_snoops_only_ciphertext_on_untrusted_channel() {
        let mut app = gcm_pair();
        let key = [7u8; 16];
        let mut ch = app.untrusted(0, |cx| UntrustedChannel::create(cx, key, 4096));
        let tx = app.eid("tx").unwrap();
        let tx_base = app.layout("tx").unwrap().base;
        app.machine.eenter(0, tx, tx_base).unwrap();
        {
            let mut cx = test_ctx(&mut app, 0, "tx");
            ch.send(&mut cx, b"SUPER-SECRET-PAYLOAD").unwrap();
        }
        app.machine.eexit(0).unwrap();
        let base = ch.base();
        let raw = app.untrusted(0, |cx| cx.read(base.add(DATA_OFF), 64).unwrap());
        assert!(
            !raw.windows(20).any(|w| w == b"SUPER-SECRET-PAYLOAD"),
            "payload must be encrypted in untrusted memory"
        );
    }

    #[test]
    fn os_silent_drop_is_undetectable_on_untrusted_channel() {
        // The Panoply attack (§ VII-B): the OS drops a message; the receiver
        // just sees an empty channel and proceeds.
        let mut app = gcm_pair();
        let mut ch = app.untrusted(0, |cx| UntrustedChannel::create(cx, [7; 16], 4096));
        let tx = app.eid("tx").unwrap();
        let tx_base = app.layout("tx").unwrap().base;
        app.machine.eenter(0, tx, tx_base).unwrap();
        {
            let mut cx = test_ctx(&mut app, 0, "tx");
            ch.os_drop_next();
            ch.send(&mut cx, b"initialize callback").unwrap(); // silently gone
            assert_eq!(
                ch.recv(&mut cx).unwrap(),
                None,
                "receiver cannot distinguish a dropped message from silence"
            );
        }
        app.machine.eexit(0).unwrap();
    }

    #[test]
    fn os_tamper_detected_on_untrusted_channel() {
        let mut app = gcm_pair();
        let mut ch = app.untrusted(0, |cx| UntrustedChannel::create(cx, [7; 16], 4096));
        let tx = app.eid("tx").unwrap();
        let tx_base = app.layout("tx").unwrap().base;
        app.machine.eenter(0, tx, tx_base).unwrap();
        {
            let mut cx = test_ctx(&mut app, 0, "tx");
            ch.send(&mut cx, b"important").unwrap();
        }
        app.machine.eexit(0).unwrap();
        // OS flips a ciphertext bit.
        let base = ch.base();
        let byte = app.untrusted(0, |cx| cx.read(base.add(DATA_OFF + 4), 1).unwrap());
        app.untrusted(0, |cx| {
            cx.write(base.add(DATA_OFF + 4), &[byte[0] ^ 1]).unwrap()
        });
        app.machine.eenter(0, tx, tx_base).unwrap();
        {
            let mut cx = test_ctx(&mut app, 0, "tx");
            let err = ch.recv(&mut cx).unwrap_err();
            assert!(matches!(err, SgxError::GeneralProtection(_)));
        }
        app.machine.eexit(0).unwrap();
    }

    #[test]
    fn gcm_channel_charges_crypto_cycles_outer_channel_does_not() {
        // Compare the raw channel operations (no call dispatch on either
        // side): the MEE path must beat software GCM per message.
        let mut app = app_with_inners();
        let cap = 8192u64;
        let base = app.ecall(0, "a", "mk", &cap.to_le_bytes()).unwrap();
        let base_va = VirtAddr(u64::from_le_bytes(base.try_into().expect("8")));
        let ch = OuterChannel::from_raw(base_va, cap);
        let msg = vec![0x5Au8; 1024];
        let a_eid = app.eid("a").unwrap();
        let a_base = app.layout("a").unwrap().base;
        app.machine.eenter(0, a_eid, a_base).unwrap();
        app.machine.reset_metrics();
        {
            let mut cx = test_ctx(&mut app, 0, "a");
            ch.send(&mut cx, &msg).unwrap();
        }
        let outer_cycles = app.machine.cycles(0);
        app.machine.eexit(0).unwrap();

        let mut gcm_app = gcm_pair();
        let mut ch = gcm_app.untrusted(0, |cx| UntrustedChannel::create(cx, [7; 16], 65536));
        let tx = gcm_app.eid("tx").unwrap();
        let tx_base = gcm_app.layout("tx").unwrap().base;
        gcm_app.machine.eenter(0, tx, tx_base).unwrap();
        gcm_app.machine.reset_metrics();
        {
            let mut cx = test_ctx(&mut gcm_app, 0, "tx");
            ch.send(&mut cx, &msg).unwrap();
        }
        let gcm_cycles = gcm_app.machine.cycles(0);
        gcm_app.machine.eexit(0).unwrap();
        assert!(
            gcm_cycles > outer_cycles,
            "software GCM ({gcm_cycles}) must cost more than the MEE path ({outer_cycles})"
        );
    }

    /// Builds an EnclaveCtx for tests that drive channels directly while
    /// already inside an enclave.
    fn test_ctx<'a>(app: &'a mut NestedApp, core: usize, name: &str) -> EnclaveCtx<'a> {
        app.enclave_ctx(core, name)
    }
}
