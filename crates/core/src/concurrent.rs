//! Thread-safe driving of a simulated machine.
//!
//! The simulator itself is a deterministic single-owner state machine; to
//! let *host* threads play the roles of different simulated cores (e.g. a
//! producer thread on core 0 and a consumer on core 1, like the paper's
//! two-thread channel microbenchmark), [`SharedApp`] serializes access
//! behind a [`parking_lot::Mutex`]. Each architectural step still executes
//! atomically, so all invariants hold regardless of host-thread
//! interleaving — which is exactly what the stress test in this module
//! checks.

use crate::runtime::{EnclaveCtx, NestedApp};
use parking_lot::Mutex;
use std::sync::Arc;

/// A [`NestedApp`] shareable across host threads.
///
/// # Example
///
/// ```
/// use ne_core::concurrent::SharedApp;
/// use ne_core::runtime::NestedApp;
///
/// let shared = SharedApp::new(NestedApp::new(ne_sgx::HwConfig::small()));
/// let clone = shared.clone();
/// std::thread::spawn(move || {
///     clone.with(|app| app.machine.charge(1, 100));
/// })
/// .join()
/// .unwrap();
/// assert!(shared.with(|app| app.machine.cycles(1)) >= 100);
/// ```
#[derive(Clone)]
pub struct SharedApp {
    inner: Arc<Mutex<NestedApp>>,
}

impl std::fmt::Debug for SharedApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedApp").finish_non_exhaustive()
    }
}

impl SharedApp {
    /// Wraps an app for sharing.
    pub fn new(app: NestedApp) -> SharedApp {
        SharedApp {
            inner: Arc::new(Mutex::new(app)),
        }
    }

    /// Runs `f` with exclusive access to the app.
    pub fn with<R>(&self, f: impl FnOnce(&mut NestedApp) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Runs `f` with an [`EnclaveCtx`] for `name` on `core`. The core must
    /// already be inside that enclave; each invocation is one atomic
    /// critical section.
    pub fn with_enclave<R>(
        &self,
        core: usize,
        name: &str,
        f: impl FnOnce(&mut EnclaveCtx<'_>) -> R,
    ) -> R {
        let mut app = self.inner.lock();
        let mut cx = app.enclave_ctx(core, name);
        f(&mut cx)
    }

    /// Unwraps back into the app (fails if other clones are alive).
    ///
    /// # Panics
    ///
    /// Panics if other handles still exist.
    pub fn into_inner(self) -> NestedApp {
        Arc::into_inner(self.inner)
            .expect("other SharedApp handles still alive")
            .into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::OuterChannel;
    use crate::edl::Edl;
    use crate::loader::EnclaveImage;
    use ne_sgx::config::HwConfig;

    fn shared_topology() -> SharedApp {
        let mut app = NestedApp::new(HwConfig::small());
        app.load(
            EnclaveImage::new("hub", b"provider")
                .heap_pages(8)
                .edl(Edl::new()),
            [],
        )
        .unwrap();
        for n in ["producer", "consumer"] {
            app.load(
                EnclaveImage::new(n, b"tenant")
                    .heap_pages(2)
                    .edl(Edl::new()),
                [],
            )
            .unwrap();
            app.associate(n, "hub").unwrap();
        }
        SharedApp::new(app)
    }

    /// Two real host threads drive two simulated cores through the outer
    /// channel; every message arrives exactly once and all architectural
    /// invariants hold at the end.
    #[test]
    fn producer_consumer_across_host_threads() {
        let shared = shared_topology();
        let (channel, p, c) = shared.with(|app| {
            let p = app.layout("producer").unwrap();
            let c = app.layout("consumer").unwrap();
            app.machine.eenter(0, p.eid, p.base).unwrap();
            app.machine.eenter(1, c.eid, c.base).unwrap();
            let mut cx = app.enclave_ctx(0, "producer");
            let ch = OuterChannel::create(&mut cx, "hub", 8192).unwrap();
            (ch, p, c)
        });
        let _ = (p, c);
        const N: u32 = 200;
        let tx = shared.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                loop {
                    let sent = tx.with_enclave(0, "producer", |cx| {
                        channel.send(cx, &i.to_le_bytes()).is_ok()
                    });
                    if sent {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
        let rx = shared.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < N as usize {
                if let Some(msg) = rx.with_enclave(1, "consumer", |cx| channel.recv(cx).unwrap()) {
                    got.push(u32::from_le_bytes(msg.try_into().expect("4 bytes")));
                } else {
                    std::thread::yield_now();
                }
            }
            got
        });
        producer.join().expect("producer");
        let got = consumer.join().expect("consumer");
        assert_eq!(got, (0..N).collect::<Vec<_>>(), "in order, exactly once");
        shared.with(|app| {
            app.machine.audit_tlbs().unwrap();
            app.machine.audit_epcm().unwrap();
        });
    }

    /// Many threads hammering disjoint cores with reads/writes never
    /// violate the invariants (coarse-grained serialization is still
    /// architecturally atomic).
    #[test]
    fn parallel_core_stress() {
        let shared = shared_topology();
        shared.with(|app| {
            let p = app.layout("producer").unwrap();
            let c = app.layout("consumer").unwrap();
            app.machine.eenter(0, p.eid, p.base).unwrap();
            app.machine.eenter(1, c.eid, c.base).unwrap();
        });
        let handles: Vec<_> = (0..2usize)
            .map(|core| {
                let s = shared.clone();
                let name = if core == 0 { "producer" } else { "consumer" };
                std::thread::spawn(move || {
                    for i in 0..300u64 {
                        s.with_enclave(core, name, |cx| {
                            let heap = cx.heap_base_of(name).unwrap();
                            cx.write(heap.add(i % 4096), &[core as u8]).unwrap();
                            let hub = cx.heap_base_of("hub").unwrap();
                            cx.write(hub.add(core as u64 * 64), &i.to_le_bytes())
                                .unwrap();
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stress thread");
        }
        shared.with(|app| {
            app.machine.audit_tlbs().unwrap();
            // Neither inner ever saw the other's heap.
            assert_eq!(app.machine.stats().faults, 0);
        });
    }
}
