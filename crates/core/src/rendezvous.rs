//! Attested channel establishment between peer inner enclaves.
//!
//! § VII-B sketches the trust story for channels through the outer
//! enclave: the nested attestation (NEREPORT) proves which inner enclaves
//! share an outer, and the outer's NASSO gating keeps rogue inners out.
//! This module packages that into a two-message rendezvous:
//!
//! 1. The offering enclave creates an [`crate::OuterChannel`] and runs
//!    NEREPORT targeted at the accepting enclave, binding the channel's
//!    base address and capacity into the report data.
//! 2. The accepting enclave verifies the MAC (same machine), checks the
//!    offerer's identity against its expectation, and checks the report's
//!    relation list proves the offerer shares this enclave's outer.
//!
//! Only then does it touch the channel memory. A forged or replayed offer,
//! or one from an inner of a *different* outer, is rejected before any
//! data flows.

use crate::channel::OuterChannel;
use crate::nasso::ExpectedIdentity;
use crate::report::{nereport, verify_nested_report, NestedReport, Relation};
use crate::runtime::EnclaveCtx;
use ne_sgx::addr::VirtAddr;
use ne_sgx::enclave::EnclaveId;
use ne_sgx::error::{Result, SgxError};

/// A channel offer: everything the peer needs, plus the attestation that
/// makes it trustworthy. Travels over any untrusted transport.
#[derive(Debug, Clone)]
pub struct ChannelOffer {
    /// Channel base address in the shared outer enclave.
    pub base: VirtAddr,
    /// Channel capacity in bytes.
    pub capacity: u64,
    /// NEREPORT binding the offerer's identity, its outer relation, and
    /// the channel coordinates.
    pub report: NestedReport,
}

fn bind_coordinates(base: VirtAddr, capacity: u64) -> [u8; 64] {
    let mut data = [0u8; 64];
    data[..8].copy_from_slice(&base.0.to_le_bytes());
    data[8..16].copy_from_slice(&capacity.to_le_bytes());
    data
}

/// Creates a channel in `outer`'s heap and produces an attested offer for
/// the enclave `target`.
///
/// Must run inside the offering inner enclave (it executes NEREPORT).
///
/// # Errors
///
/// Channel allocation or attestation failures.
pub fn offer_channel(
    cx: &mut EnclaveCtx<'_>,
    outer: &str,
    capacity: u64,
    target: EnclaveId,
) -> Result<(OuterChannel, ChannelOffer)> {
    let channel = OuterChannel::create(cx, outer, capacity)?;
    let report = nereport(
        cx.machine,
        cx.core(),
        target,
        bind_coordinates(channel.base(), capacity),
    )?;
    Ok((
        channel,
        ChannelOffer {
            base: channel.base(),
            capacity,
            report,
        },
    ))
}

/// Verifies an offer from the accepting enclave's point of view and opens
/// the channel.
///
/// Checks, in order: the report MAC (we were its target, on this machine);
/// the offerer's identity against `expected_peer`; that the coordinates in
/// the offer match what the report signed; and that the offerer's relation
/// list names *our own outer enclave* — i.e. the channel really lives in
/// an outer we share.
///
/// # Errors
///
/// [`SgxError::InitVerification`] describing the first failed check.
pub fn accept_channel(
    cx: &mut EnclaveCtx<'_>,
    offer: &ChannelOffer,
    expected_peer: &ExpectedIdentity,
) -> Result<OuterChannel> {
    if !verify_nested_report(cx.machine, cx.core(), &offer.report)? {
        return Err(SgxError::InitVerification(
            "channel offer: report MAC invalid".into(),
        ));
    }
    let peer_ok = match (&expected_peer.mrenclave, &expected_peer.mrsigner) {
        (None, None) => false,
        (mre, mrs) => {
            mre.is_none_or(|e| e == offer.report.mrenclave)
                && mrs.is_none_or(|s| s == offer.report.mrsigner)
        }
    };
    if !peer_ok {
        return Err(SgxError::InitVerification(
            "channel offer: peer identity mismatch".into(),
        ));
    }
    if offer.report.report_data != bind_coordinates(offer.base, offer.capacity) {
        return Err(SgxError::InitVerification(
            "channel offer: coordinates do not match the attested ones".into(),
        ));
    }
    // The offerer must share (at least) one of our outer enclaves.
    let my_eid = cx.eid;
    let my_outers: Vec<_> = cx
        .machine
        .enclaves()
        .get(my_eid)
        .expect("running enclave is live")
        .outer_eids
        .clone();
    let my_outer_measurements: Vec<_> = my_outers
        .iter()
        .filter_map(|o| cx.machine.enclaves().get(*o).map(|s| s.mrenclave))
        .collect();
    let shares_outer = offer
        .report
        .relations
        .iter()
        .any(|r| r.relation == Relation::Outer && my_outer_measurements.contains(&r.mrenclave));
    if !shares_outer {
        return Err(SgxError::InitVerification(
            "channel offer: offerer does not share our outer enclave".into(),
        ));
    }
    Ok(OuterChannel::from_raw(offer.base, offer.capacity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edl::Edl;
    use crate::loader::EnclaveImage;
    use crate::runtime::NestedApp;
    use ne_sgx::config::HwConfig;

    /// hub ← {a, b}; hub2 ← {c}. Plus identities for expectations.
    fn topology() -> NestedApp {
        let mut app = NestedApp::new(HwConfig::small());
        for hub in ["hub", "hub2"] {
            app.load(
                EnclaveImage::new(hub, b"provider")
                    .heap_pages(8)
                    .edl(Edl::new()),
                [],
            )
            .unwrap();
        }
        for (inner, outer) in [("a", "hub"), ("b", "hub"), ("c", "hub2")] {
            app.load(
                EnclaveImage::new(inner, b"tenant")
                    .heap_pages(2)
                    .edl(Edl::new()),
                [],
            )
            .unwrap();
            app.associate(inner, outer).unwrap();
        }
        app
    }

    fn identity(app: &NestedApp, name: &str) -> ExpectedIdentity {
        let eid = app.eid(name).unwrap();
        ExpectedIdentity::enclave(app.machine.enclaves().get(eid).unwrap().mrenclave)
    }

    fn make_offer(app: &mut NestedApp, from: &str, to: &str) -> (OuterChannel, ChannelOffer) {
        let target = app.eid(to).unwrap();
        let l = app.layout(from).unwrap();
        app.machine.eenter(0, l.eid, l.base).unwrap();
        let mut cx = app.enclave_ctx(0, from);
        let out = offer_channel(&mut cx, "hub", 4096, target).unwrap();
        app.machine.eexit(0).unwrap();
        out
    }

    fn try_accept(
        app: &mut NestedApp,
        who: &str,
        offer: &ChannelOffer,
        expected: &ExpectedIdentity,
    ) -> Result<OuterChannel> {
        let l = app.layout(who).unwrap();
        app.machine.eenter(0, l.eid, l.base).unwrap();
        let result = {
            let mut cx = app.enclave_ctx(0, who);
            accept_channel(&mut cx, offer, expected)
        };
        app.machine.eexit(0).unwrap();
        result
    }

    #[test]
    fn rendezvous_and_message_flow() {
        let mut app = topology();
        let a_id = identity(&app, "a");
        let (tx_channel, offer) = make_offer(&mut app, "a", "b");
        let rx_channel = try_accept(&mut app, "b", &offer, &a_id).unwrap();
        assert_eq!(rx_channel.base(), tx_channel.base());
        // Use the channel both ways.
        let a = app.layout("a").unwrap();
        app.machine.eenter(0, a.eid, a.base).unwrap();
        {
            let mut cx = app.enclave_ctx(0, "a");
            tx_channel.send(&mut cx, b"attested hello").unwrap();
        }
        app.machine.eexit(0).unwrap();
        let b = app.layout("b").unwrap();
        app.machine.eenter(0, b.eid, b.base).unwrap();
        {
            let mut cx = app.enclave_ctx(0, "b");
            assert_eq!(
                rx_channel.recv(&mut cx).unwrap().unwrap(),
                b"attested hello"
            );
        }
        app.machine.eexit(0).unwrap();
    }

    #[test]
    fn wrong_peer_identity_rejected() {
        let mut app = topology();
        let b_id = identity(&app, "b"); // expecting b...
        let (_ch, offer) = make_offer(&mut app, "a", "b"); // ...but a offers
        let err = try_accept(&mut app, "b", &offer, &b_id).unwrap_err();
        assert!(matches!(err, SgxError::InitVerification(_)));
    }

    #[test]
    fn tampered_coordinates_rejected() {
        let mut app = topology();
        let a_id = identity(&app, "a");
        let (_ch, mut offer) = make_offer(&mut app, "a", "b");
        // The OS relays the offer and redirects the channel elsewhere.
        offer.base = offer.base.add(64);
        let err = try_accept(&mut app, "b", &offer, &a_id).unwrap_err();
        assert!(matches!(err, SgxError::InitVerification(_)));
    }

    #[test]
    fn offer_for_someone_else_rejected() {
        // Offer targeted at c; b must not be able to verify it.
        let mut app = topology();
        let a_id = identity(&app, "a");
        let (_ch, offer) = make_offer(&mut app, "a", "c");
        let err = try_accept(&mut app, "b", &offer, &a_id).unwrap_err();
        assert!(matches!(err, SgxError::InitVerification(_)));
    }

    #[test]
    fn peer_in_different_outer_rejected() {
        // c shares *hub2*, not hub: even with a valid identity expectation,
        // the relation check fails on c's side.
        let mut app = topology();
        let a_id = identity(&app, "a");
        let (_ch, offer) = make_offer(&mut app, "a", "c");
        let err = try_accept(&mut app, "c", &offer, &a_id).unwrap_err();
        assert!(matches!(err, SgxError::InitVerification(_)));
    }

    #[test]
    fn empty_expectation_rejected() {
        let mut app = topology();
        let (_ch, offer) = make_offer(&mut app, "a", "b");
        let empty = ExpectedIdentity {
            mrenclave: None,
            mrsigner: None,
        };
        let err = try_accept(&mut app, "b", &offer, &empty).unwrap_err();
        assert!(matches!(err, SgxError::InitVerification(_)));
    }
}
