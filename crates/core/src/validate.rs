//! The nested-enclave TLB-miss validation flow (paper Fig. 6).
//!
//! The only hardware-datapath change the paper requires: when the baseline
//! SGX check fails *and the core is executing an inner enclave*, the flow
//! retries the check against the associated outer enclave(s) — granting the
//! asymmetric permission (inner may touch outer, never vice versa) that
//! realizes the multi-level-security model.

use ne_sgx::enclave::{EnclaveId, EnclaveTable};
use ne_sgx::error::FaultKind;
use ne_sgx::tlb::TlbEntry;
use ne_sgx::validate::{
    check_epcm_binding, Outcome, SgxValidator, TlbValidator, Validation, ValidationCtx,
};

/// The Fig. 6 validator. Installing it into the machine is the analogue of
/// deploying the paper's microcode patch.
#[derive(Debug, Clone, Copy)]
pub struct NestedValidator {
    /// Maximum inner→outer chain length followed during validation.
    /// The base design uses two levels; § VIII lifts this ("the traversal
    /// must be extended to follow the chain of inner-outer links").
    max_depth: usize,
}

impl NestedValidator {
    /// Validator for the paper's base two-level design.
    pub fn new() -> NestedValidator {
        NestedValidator { max_depth: 2 }
    }

    /// Validator allowing chains of up to `max_depth` enclaves
    /// (§ VIII multi-level nesting). Depth 2 is the base design.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth < 2` — a depth-1 "chain" is just baseline SGX.
    pub fn with_max_depth(max_depth: usize) -> NestedValidator {
        assert!(max_depth >= 2, "nesting requires at least two levels");
        NestedValidator { max_depth }
    }

    /// Configured chain limit.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Enumerates the outer closure of `eid` in traversal order (BFS),
    /// excluding `eid` itself, bounded by `max_depth` levels.
    fn outer_closure(&self, eid: EnclaveId, enclaves: &EnclaveTable) -> Vec<EnclaveId> {
        let mut out: Vec<EnclaveId> = Vec::new();
        let mut frontier = vec![eid];
        for _ in 1..self.max_depth {
            let mut next = Vec::new();
            for id in frontier {
                if let Some(secs) = enclaves.get(id) {
                    for &outer in &secs.outer_eids {
                        if outer != eid && !out.contains(&outer) {
                            out.push(outer);
                            next.push(outer);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out
    }
}

impl Default for NestedValidator {
    fn default() -> Self {
        NestedValidator::new()
    }
}

impl TlbValidator for NestedValidator {
    fn validate(&self, cx: &ValidationCtx<'_>) -> Validation {
        // Run the baseline flow first; the shaded steps of Fig. 6 only
        // trigger where it would fail in enclave mode.
        let base = SgxValidator::new().validate(cx);
        let eid = match cx.core.enclave {
            Some(eid) => eid,
            None => return base, // non-enclave path is unchanged
        };
        match base.outcome {
            // Steps (3)–(5): EPCM id mismatch inside PRM — retry against
            // each associated outer enclave.
            Outcome::Fault(FaultKind::EpcmEnclaveMismatch)
            | Outcome::Fault(FaultKind::EpcmAddressMismatch) => {
                let mut steps = base.steps;
                for outer in self.outer_closure(eid, cx.enclaves) {
                    steps += 2; // outer-id compare + VA compare
                    match check_epcm_binding(cx, outer) {
                        Ok(epcm_perms) => {
                            return Validation {
                                outcome: Outcome::Insert(TlbEntry {
                                    ppn: cx.pte.ppn,
                                    perms: cx.pte.perms.intersect(epcm_perms),
                                }),
                                steps,
                            };
                        }
                        Err(FaultKind::EnclavePageSwappedOut) => {
                            return Validation {
                                outcome: Outcome::Fault(FaultKind::EnclavePageSwappedOut),
                                steps,
                            };
                        }
                        Err(_) => continue,
                    }
                }
                Validation {
                    outcome: base.outcome,
                    steps,
                }
            }
            // Steps (1)–(2): inside enclave mode, VA outside own ELRANGE
            // resolving to non-PRM memory. If the VA belongs to an outer
            // enclave's ELRANGE, its EPC page was evicted → page fault so
            // the OS reloads it (never a silent plaintext read).
            Outcome::Insert(entry) if !(cx.in_prm)(cx.pte.ppn.0) => {
                let own_range = cx
                    .enclaves
                    .get(eid)
                    .map(|s| s.elrange.contains_page(cx.vpn))
                    .unwrap_or(false);
                if own_range {
                    return base; // unreachable: baseline faults this case
                }
                let mut steps = base.steps;
                for outer in self.outer_closure(eid, cx.enclaves) {
                    steps += 1; // outer ELRANGE compare
                    if let Some(outer_secs) = cx.enclaves.get(outer) {
                        if outer_secs.elrange.contains_page(cx.vpn) {
                            return Validation {
                                outcome: Outcome::Fault(FaultKind::EnclavePageSwappedOut),
                                steps,
                            };
                        }
                    }
                }
                Validation {
                    outcome: Outcome::Insert(entry),
                    steps,
                }
            }
            _ => base,
        }
    }

    fn eviction_tracking_set(&self, eid: EnclaveId, enclaves: &EnclaveTable) -> Vec<EnclaveId> {
        // § IV-E: translations into an outer enclave's pages may live in the
        // TLBs of cores running its inner enclaves, transitively.
        let mut set = vec![eid];
        let mut frontier = vec![eid];
        while let Some(id) = frontier.pop() {
            if let Some(secs) = enclaves.get(id) {
                for &inner in &secs.inner_eids {
                    if !set.contains(&inner) {
                        set.push(inner);
                        frontier.push(inner);
                    }
                }
            }
        }
        set
    }

    fn name(&self) -> &'static str {
        "nested-enclave"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ne_sgx::addr::{Ppn, VirtAddr, VirtRange, Vpn};
    use ne_sgx::enclave::ProcessId;
    use ne_sgx::epcm::{Epcm, EpcmEntry, PagePerms, PageType};
    use ne_sgx::page_table::Pte;
    use ne_sgx::validate::CoreView;

    const PRM_START: u64 = 1000;

    fn in_prm(ppn: u64) -> bool {
        ppn >= PRM_START
    }

    struct Fx {
        epcm: Epcm,
        enclaves: EnclaveTable,
        outer: EnclaveId,
        inner: EnclaveId,
        peer: EnclaveId,
    }

    /// outer: vpns 16..32 with EPC page at PRM_START+1 (vpn 16);
    /// inner: vpns 64..80 with EPC page at PRM_START+2 (vpn 64);
    /// peer:  vpns 96..112 with EPC page at PRM_START+3 (vpn 96).
    /// inner and peer are both inners of outer.
    fn fixture() -> Fx {
        let mut enclaves = EnclaveTable::new();
        let outer = enclaves.create(ProcessId(0), VirtRange::new(VirtAddr(16 * 4096), 16 * 4096));
        let inner = enclaves.create(ProcessId(0), VirtRange::new(VirtAddr(64 * 4096), 16 * 4096));
        let peer = enclaves.create(ProcessId(0), VirtRange::new(VirtAddr(96 * 4096), 16 * 4096));
        enclaves.get_mut(inner).unwrap().outer_eids.push(outer);
        enclaves.get_mut(peer).unwrap().outer_eids.push(outer);
        enclaves
            .get_mut(outer)
            .unwrap()
            .inner_eids
            .extend([inner, peer]);
        let mut epcm = Epcm::new();
        for (i, (eid, vpn)) in [(outer, 16u64), (inner, 64), (peer, 96)].iter().enumerate() {
            epcm.insert(
                Ppn(PRM_START + 1 + i as u64),
                EpcmEntry {
                    eid: *eid,
                    vpn: Vpn(*vpn),
                    page_type: PageType::Reg,
                    perms: PagePerms::RW,
                    blocked: false,
                    pending: false,
                },
            );
        }
        Fx {
            epcm,
            enclaves,
            outer,
            inner,
            peer,
        }
    }

    fn ctx<'a>(fx: &'a Fx, enclave: Option<EnclaveId>, vpn: u64, ppn: u64) -> ValidationCtx<'a> {
        ValidationCtx {
            core: CoreView { enclave },
            vpn: Vpn(vpn),
            pte: Pte {
                ppn: Ppn(ppn),
                perms: PagePerms::RW,
            },
            epcm: &fx.epcm,
            enclaves: &fx.enclaves,
            in_prm: &in_prm,
        }
    }

    fn validate(fx: &Fx, enclave: Option<EnclaveId>, vpn: u64, ppn: u64) -> Validation {
        NestedValidator::new().validate(&ctx(fx, enclave, vpn, ppn))
    }

    #[test]
    fn inner_can_access_outer_pages() {
        let fx = fixture();
        let v = validate(&fx, Some(fx.inner), 16, PRM_START + 1);
        assert!(matches!(v.outcome, Outcome::Insert(_)), "{v:?}");
    }

    #[test]
    fn inner_to_outer_costs_extra_steps() {
        let fx = fixture();
        let own = validate(&fx, Some(fx.inner), 64, PRM_START + 2);
        let outer = validate(&fx, Some(fx.inner), 16, PRM_START + 1);
        assert!(matches!(own.outcome, Outcome::Insert(_)));
        assert!(
            outer.steps > own.steps,
            "outer access must take more validation steps ({} vs {})",
            outer.steps,
            own.steps
        );
    }

    #[test]
    fn outer_cannot_access_inner_pages() {
        let fx = fixture();
        let v = validate(&fx, Some(fx.outer), 64, PRM_START + 2);
        assert_eq!(v.outcome, Outcome::Fault(FaultKind::EpcmEnclaveMismatch));
    }

    #[test]
    fn peer_inners_are_isolated() {
        let fx = fixture();
        let v = validate(&fx, Some(fx.inner), 96, PRM_START + 3);
        assert_eq!(v.outcome, Outcome::Fault(FaultKind::EpcmEnclaveMismatch));
        let v = validate(&fx, Some(fx.peer), 64, PRM_START + 2);
        assert_eq!(v.outcome, Outcome::Fault(FaultKind::EpcmEnclaveMismatch));
    }

    #[test]
    fn non_enclave_still_aborted() {
        let fx = fixture();
        let v = validate(&fx, None, 16, PRM_START + 1);
        assert_eq!(v.outcome, Outcome::Abort);
    }

    #[test]
    fn os_remap_onto_outer_page_detected() {
        // OS maps an unrelated VA of the inner to the outer's EPC frame:
        // the EPCM VA check must still reject it.
        let fx = fixture();
        let v = validate(&fx, Some(fx.inner), 65, PRM_START + 1);
        assert!(matches!(v.outcome, Outcome::Fault(_)), "{v:?}");
    }

    #[test]
    fn evicted_outer_page_faults_as_swapped_out() {
        // VA inside the *outer* ELRANGE backed by ordinary RAM → the outer
        // page was evicted; inner must take a page fault, not read RAM.
        let fx = fixture();
        let v = validate(&fx, Some(fx.inner), 17, 5);
        assert_eq!(v.outcome, Outcome::Fault(FaultKind::EnclavePageSwappedOut));
    }

    #[test]
    fn untrusted_memory_from_inner_still_allowed_without_exec() {
        let fx = fixture();
        let mut cx = ctx(&fx, Some(fx.inner), 200, 5);
        cx.pte.perms = PagePerms::RWX;
        let v = NestedValidator::new().validate(&cx);
        match v.outcome {
            Outcome::Insert(e) => assert!(!e.perms.x),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blocked_outer_page_faults() {
        let mut fx = fixture();
        fx.epcm.get_mut(Ppn(PRM_START + 1)).unwrap().blocked = true;
        let v = validate(&fx, Some(fx.inner), 16, PRM_START + 1);
        assert_eq!(v.outcome, Outcome::Fault(FaultKind::EnclavePageSwappedOut));
    }

    #[test]
    fn three_level_chain_respects_depth_limit() {
        let mut fx = fixture();
        // grand: a new innermost enclave whose outer is `inner`.
        let grand = fx.enclaves.create(
            ProcessId(0),
            VirtRange::new(VirtAddr(128 * 4096), 16 * 4096),
        );
        fx.enclaves
            .get_mut(grand)
            .unwrap()
            .outer_eids
            .push(fx.inner);
        fx.enclaves
            .get_mut(fx.inner)
            .unwrap()
            .inner_eids
            .push(grand);
        // Depth 2 (base design): grand may reach `inner` but NOT `outer`.
        let d2 = NestedValidator::new();
        let v = d2.validate(&ctx(&fx, Some(grand), 64, PRM_START + 2));
        assert!(matches!(v.outcome, Outcome::Insert(_)), "direct outer ok");
        let v = d2.validate(&ctx(&fx, Some(grand), 16, PRM_START + 1));
        assert!(
            matches!(v.outcome, Outcome::Fault(_)),
            "depth-2 stops at one hop"
        );
        // Depth 3 (§ VIII multi-level): grand reaches `outer` too.
        let d3 = NestedValidator::with_max_depth(3);
        let v = d3.validate(&ctx(&fx, Some(grand), 16, PRM_START + 1));
        assert!(
            matches!(v.outcome, Outcome::Insert(_)),
            "depth-3 follows chain"
        );
    }

    #[test]
    fn multiple_outers_lattice() {
        let mut fx = fixture();
        // Make `inner` also an inner of `peer` (lattice, § VIII).
        fx.enclaves
            .get_mut(fx.inner)
            .unwrap()
            .outer_eids
            .push(fx.peer);
        fx.enclaves
            .get_mut(fx.peer)
            .unwrap()
            .inner_eids
            .push(fx.inner);
        let v = validate(&fx, Some(fx.inner), 96, PRM_START + 3);
        assert!(
            matches!(v.outcome, Outcome::Insert(_)),
            "second outer reachable"
        );
        // But peer still cannot read inner.
        let v = validate(&fx, Some(fx.peer), 64, PRM_START + 2);
        assert!(matches!(v.outcome, Outcome::Fault(_)));
    }

    #[test]
    fn tracking_set_includes_transitive_inners() {
        let mut fx = fixture();
        let grand = fx.enclaves.create(
            ProcessId(0),
            VirtRange::new(VirtAddr(128 * 4096), 16 * 4096),
        );
        fx.enclaves
            .get_mut(grand)
            .unwrap()
            .outer_eids
            .push(fx.inner);
        fx.enclaves
            .get_mut(fx.inner)
            .unwrap()
            .inner_eids
            .push(grand);
        let set = NestedValidator::new().eviction_tracking_set(fx.outer, &fx.enclaves);
        assert!(set.contains(&fx.outer));
        assert!(set.contains(&fx.inner));
        assert!(set.contains(&fx.peer));
        assert!(set.contains(&grand), "transitive inner must be tracked");
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn depth_one_rejected() {
        NestedValidator::with_max_depth(1);
    }
}
