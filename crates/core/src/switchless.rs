//! Switchless (exitless) ocalls.
//!
//! The paper's related work (§ IX) points at HotCalls \[54\] and the SDK's
//! switchless calls \[47\]: instead of paying an EEXIT/EENTER round trip per
//! ocall, the enclave writes a request descriptor into *untrusted shared
//! memory* and an untrusted worker thread on another core services it
//! while the enclave thread polls for the response. No transition, no TLB
//! flush — at the price of a busy worker core and per-call copies.
//!
//! This module implements that mechanism on the simulator: the request and
//! response slots live in untrusted memory (an enclave may read and write
//! untrusted memory freely), the worker runs on a different simulated
//! core, and the cost model charges polling and copies instead of
//! Table II transition costs. The `ablation_switchless` binary compares
//! the two mechanisms.

use crate::runtime::{EnclaveCtx, UntrustedCtx};
use ne_sgx::addr::VirtAddr;
use ne_sgx::error::{Result, SgxError};
use ne_sgx::metrics::CycleCategory;
use ne_sgx::trace::SpanKind;

/// Cycles the caller spends on the synchronization handshake (store
/// request flag, poll response flag) — calibrated near HotCalls' reported
/// ~600-cycle hot call.
const SYNC_CYCLES: u64 = 620;
/// Cycles the worker core burns polling for work per serviced call
/// (amortized busy-wait share).
const WORKER_POLL_CYCLES: u64 = 400;

/// A switchless call queue: one request/response slot pair in untrusted
/// memory plus the identity of the worker core that services it.
#[derive(Debug, Clone, Copy)]
pub struct SwitchlessQueue {
    slot: VirtAddr,
    capacity: usize,
    worker_core: usize,
}

impl SwitchlessQueue {
    /// Allocates the shared slot in untrusted memory. `capacity` bounds
    /// request and response payload sizes; `worker_core` is the core the
    /// untrusted worker thread runs on.
    pub fn create(
        cx: &mut UntrustedCtx<'_>,
        capacity: usize,
        worker_core: usize,
    ) -> SwitchlessQueue {
        let pages = (capacity * 2 + 64).div_ceil(ne_sgx::PAGE_SIZE);
        let slot = cx.alloc_untrusted(pages);
        SwitchlessQueue {
            slot,
            capacity,
            worker_core,
        }
    }

    /// Reconstructs a queue handle from its slot address (how an enclave
    /// function receives the queue the untrusted side created).
    pub fn with_slot(slot: VirtAddr, capacity: usize, worker_core: usize) -> SwitchlessQueue {
        SwitchlessQueue {
            slot,
            capacity,
            worker_core,
        }
    }

    /// The untrusted slot address (visible to the OS — by design; payloads
    /// crossing here are as exposed as classic ocall arguments).
    pub fn slot(&self) -> VirtAddr {
        self.slot
    }

    /// Performs a switchless ocall: marshal the request into the shared
    /// slot, have the worker core service it, and read the response —
    /// without ever leaving enclave mode.
    ///
    /// # Errors
    ///
    /// Oversized payloads, unknown functions, and whatever the untrusted
    /// function itself returns. [`SgxError::Stalled`] when an injected
    /// stall window has the worker core not polling — the caller is free
    /// to degrade to a classic exit-based ocall.
    pub fn ocall(&self, cx: &mut EnclaveCtx<'_>, func: &str, args: &[u8]) -> Result<Vec<u8>> {
        if args.len() > self.capacity {
            return Err(SgxError::GeneralProtection(
                "switchless request exceeds slot capacity".into(),
            ));
        }
        if cx.machine.current_enclave(self.worker_core).is_some() {
            return Err(SgxError::GeneralProtection(
                "switchless worker core is not in untrusted mode".into(),
            ));
        }
        // Fail before any marshalling or accounting: a stalled worker never
        // saw the request, so the call must look like it never started.
        if cx.machine.chaos_take_stall() {
            return Err(SgxError::Stalled(
                "switchless reply core stopped polling".into(),
            ));
        }
        let caller_core = cx.core();
        let span = cx
            .machine
            .span_begin(caller_core, SpanKind::SwitchlessOcall, func);
        cx.machine.stats_mut().switchless_ocalls += 1;
        // Marshal the request into untrusted memory (the enclave writes
        // untrusted pages directly; costs accrue through the memory model).
        cx.write(self.slot, &(args.len() as u32).to_le_bytes())?;
        cx.write(self.slot.add(4), args)?;
        // The handshake replaces a hardware transition, so it lands in the
        // same cycle category as EEXIT/EENTER would.
        cx.machine
            .charge_cat(caller_core, CycleCategory::Transition, SYNC_CYCLES);
        // The worker core picks it up and runs the untrusted function.
        let request = {
            let len_bytes = cx.machine.read(self.worker_core, self.slot, 4)?;
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            cx.machine.read(self.worker_core, self.slot.add(4), len)?
        };
        cx.machine.charge_cat(
            self.worker_core,
            CycleCategory::Transition,
            WORKER_POLL_CYCLES,
        );
        let response = cx.run_untrusted_on(self.worker_core, func, &request)?;
        if response.len() > self.capacity {
            return Err(SgxError::GeneralProtection(
                "switchless response exceeds slot capacity".into(),
            ));
        }
        let resp_off = 4 + self.capacity as u64;
        cx.machine.write(
            self.worker_core,
            self.slot.add(resp_off),
            &(response.len() as u32).to_le_bytes(),
        )?;
        cx.machine
            .write(self.worker_core, self.slot.add(resp_off + 4), &response)?;
        // The enclave thread observes the response flag and copies out.
        let len_bytes = cx.read(self.slot.add(resp_off), 4)?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let out = cx.read(self.slot.add(resp_off + 4), len);
        cx.machine.span_end(caller_core, span);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edl::Edl;
    use crate::loader::EnclaveImage;
    use crate::runtime::{NestedApp, TrustedFn, UntrustedFn};
    use ne_sgx::config::HwConfig;
    use std::sync::Arc;

    fn app_with_queue() -> NestedApp {
        let mut app = NestedApp::new(HwConfig::small());
        app.register_untrusted(
            "upper",
            Arc::new(|_cx: &mut crate::runtime::UntrustedCtx<'_>, args: &[u8]| {
                Ok(args.to_ascii_uppercase())
            }) as UntrustedFn,
        );
        let img = EnclaveImage::new("e", b"o")
            .heap_pages(2)
            .edl(Edl::new().ecall("run").ocall("upper"));
        let run: TrustedFn = Arc::new(|cx, args| {
            let q = SwitchlessQueue {
                slot: VirtAddr(u64::from_le_bytes(args[..8].try_into().expect("8"))),
                capacity: 256,
                worker_core: 1,
            };
            q.ocall(cx, "upper", &args[8..])
        });
        app.load(img, [("run".to_string(), run)]).unwrap();
        app
    }

    #[test]
    fn switchless_ocall_roundtrip_without_transitions() {
        let mut app = app_with_queue();
        let q = app.untrusted(0, |cx| SwitchlessQueue::create(cx, 256, 1));
        let mut args = q.slot().0.to_le_bytes().to_vec();
        args.extend_from_slice(b"hello switchless");
        app.machine.reset_metrics();
        let out = app.ecall(0, "e", "run", &args).unwrap();
        assert_eq!(out, b"HELLO SWITCHLESS");
        let s = app.machine.stats();
        // Exactly the outer ecall pair; the ocall itself crossed nothing.
        assert_eq!(s.ecalls, 1);
        assert_eq!(s.ocalls, 1);
    }

    #[test]
    fn switchless_is_cheaper_than_classic_ocall_on_the_caller() {
        let mut app = app_with_queue();
        let q = app.untrusted(0, |cx| SwitchlessQueue::create(cx, 256, 1));
        // Classic path for comparison.
        let classic: TrustedFn = Arc::new(|cx, args| cx.ocall("upper", args));
        let img = EnclaveImage::new("classic", b"o")
            .heap_pages(2)
            .edl(Edl::new().ecall("run").ocall("upper"));
        app.load(img, [("run".to_string(), classic)]).unwrap();

        let mut args = q.slot().0.to_le_bytes().to_vec();
        args.extend_from_slice(b"payload");
        app.machine.reset_metrics();
        app.ecall(0, "e", "run", &args).unwrap();
        let switchless_cycles = app.machine.cycles(0);
        app.machine.reset_metrics();
        app.ecall(0, "classic", "run", b"payload").unwrap();
        let classic_cycles = app.machine.cycles(0);
        assert!(
            switchless_cycles < classic_cycles,
            "switchless {switchless_cycles} must beat classic {classic_cycles} on the caller core"
        );
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut app = app_with_queue();
        let q = app.untrusted(0, |cx| SwitchlessQueue::create(cx, 256, 1));
        let mut args = q.slot().0.to_le_bytes().to_vec();
        args.extend_from_slice(&[0u8; 300]);
        let err = app.ecall(0, "e", "run", &args).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn busy_worker_core_rejected() {
        let mut app = app_with_queue();
        let q = app.untrusted(0, |cx| SwitchlessQueue::create(cx, 256, 1));
        // Park an enclave thread on the worker core.
        let l = app.layout("e").unwrap();
        app.machine.eenter(1, l.eid, l.base).unwrap();
        let mut args = q.slot().0.to_le_bytes().to_vec();
        args.extend_from_slice(b"x");
        let err = app.ecall(0, "e", "run", &args).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }
}
