//! Remote attestation of nested enclaves (§ IV-E "Remote attestation").
//!
//! "An attestation to an outer enclave must report the measurements of all
//! inner enclaves sharing the outer enclave, in addition to the
//! measurement of the outer enclave."
//!
//! The flow mirrors SGX's quoting architecture:
//!
//! 1. The attested enclave runs `NEREPORT` targeted at the platform's
//!    **quoting enclave** (QE).
//! 2. The QE — itself an enclave on the same machine — verifies the local
//!    report MAC and re-signs the body (identity + relation list + user
//!    data) with the *platform attestation key*, producing a
//!    [`NestedQuote`].
//! 3. A **remote verifier**, provisioned with the attestation key by the
//!    attestation service (the EPID/ECDSA PKI stands in as a shared MAC
//!    key — see the substitution note in DESIGN.md), validates the quote
//!    off-platform and inspects the nesting relations.
//!
//! The security property tested here: a remote client can convince itself
//! not only *what* enclave it talks to, but *which inner enclaves share
//! its outer enclave* — closing the gap the paper calls out in current
//! SGX attestation.

use crate::report::{nereport, verify_nested_report, NestedReport, RelationRecord};
use ne_crypto::hmac::hmac_sha256;
use ne_crypto::Digest32;
use ne_sgx::attest::ReportData;
use ne_sgx::enclave::EnclaveId;
use ne_sgx::error::{Result, SgxError};
use ne_sgx::machine::Machine;

/// A remotely-verifiable attestation of an enclave and its nesting
/// relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedQuote {
    /// Measurement of the attested enclave.
    pub mrenclave: Digest32,
    /// Signer of the attested enclave.
    pub mrsigner: Digest32,
    /// Caller payload (e.g. a TLS channel binding).
    pub report_data: ReportData,
    /// The attested enclave's immediate associations.
    pub relations: Vec<RelationRecord>,
    /// Signature by the platform attestation key.
    pub signature: [u8; 32],
}

fn quote_body(
    mrenclave: &Digest32,
    mrsigner: &Digest32,
    report_data: &ReportData,
    relations: &[RelationRecord],
) -> Vec<u8> {
    let mut b = Vec::with_capacity(160 + relations.len() * 65);
    b.extend_from_slice(b"nested-quote-v1");
    b.extend_from_slice(mrenclave);
    b.extend_from_slice(mrsigner);
    b.extend_from_slice(report_data);
    b.extend_from_slice(&(relations.len() as u32).to_le_bytes());
    for r in relations {
        b.push(match r.relation {
            crate::report::Relation::Outer => 0,
            crate::report::Relation::Inner => 1,
        });
        b.extend_from_slice(&r.mrenclave);
        b.extend_from_slice(&r.mrsigner);
    }
    b
}

/// The platform's quoting enclave: converts local nested reports into
/// remotely-verifiable quotes.
#[derive(Debug)]
pub struct QuotingEnclave {
    eid: EnclaveId,
    tcs: ne_sgx::VirtAddr,
    attestation_key: [u8; 16],
}

impl QuotingEnclave {
    /// Provisions the QE: the enclave identified by `(eid, tcs)` becomes
    /// the quote signer, deriving the platform attestation key inside
    /// enclave mode (EGETKEY), exactly where a real QE would unseal its
    /// EPID/ECDSA key.
    ///
    /// # Errors
    ///
    /// Entry faults if the enclave is not initialized.
    pub fn provision(
        machine: &mut Machine,
        core: usize,
        eid: EnclaveId,
        tcs: ne_sgx::VirtAddr,
    ) -> Result<QuotingEnclave> {
        machine.eenter(core, eid, tcs)?;
        let attestation_key = machine.egetkey(core, ne_sgx::attest::KeyPolicy::SealToEnclave)?;
        machine.eexit(core)?;
        Ok(QuotingEnclave {
            eid,
            tcs,
            attestation_key,
        })
    }

    /// The QE's enclave id (the NEREPORT target for attested enclaves).
    pub fn eid(&self) -> EnclaveId {
        self.eid
    }

    /// Turns a local nested report (which must have targeted the QE) into
    /// a quote. Runs inside the QE: the local MAC is verified in enclave
    /// mode before the attestation key touches anything.
    ///
    /// # Errors
    ///
    /// [`SgxError::InitVerification`] when the local report does not
    /// verify (wrong target, forged, or from another machine).
    pub fn quote(
        &self,
        machine: &mut Machine,
        core: usize,
        report: &NestedReport,
    ) -> Result<NestedQuote> {
        machine.eenter(core, self.eid, self.tcs)?;
        let ok = verify_nested_report(machine, core, report)?;
        machine.eexit(core)?;
        if !ok {
            return Err(SgxError::InitVerification(
                "quoting enclave rejected the local report".into(),
            ));
        }
        let body = quote_body(
            &report.mrenclave,
            &report.mrsigner,
            &report.report_data,
            &report.relations,
        );
        Ok(NestedQuote {
            mrenclave: report.mrenclave,
            mrsigner: report.mrsigner,
            report_data: report.report_data,
            relations: report.relations.clone(),
            signature: hmac_sha256(&self.attestation_key, &body),
        })
    }

    /// What the attestation service hands to remote verifiers.
    /// (Substitution for the EPID/ECDSA public key; see DESIGN.md.)
    pub fn verification_key(&self) -> [u8; 16] {
        self.attestation_key
    }
}

/// An off-platform verifier provisioned by the attestation service.
#[derive(Debug, Clone)]
pub struct RemoteVerifier {
    key: [u8; 16],
}

impl RemoteVerifier {
    /// Creates a verifier from the attestation service's key material.
    pub fn new(key: [u8; 16]) -> RemoteVerifier {
        RemoteVerifier { key }
    }

    /// Verifies a quote's signature.
    pub fn verify(&self, quote: &NestedQuote) -> bool {
        let body = quote_body(
            &quote.mrenclave,
            &quote.mrsigner,
            &quote.report_data,
            &quote.relations,
        );
        ne_crypto::ct::ct_eq(&hmac_sha256(&self.key, &body), &quote.signature)
    }

    /// Verifies the quote *and* checks a nesting policy: the attested
    /// enclave must be `expected`, and every related inner enclave must be
    /// signed by `allowed_inner_signer` (the multi-tenant policy of
    /// § VI-B: a client only proceeds if no foreign code shares its
    /// outer enclave).
    pub fn verify_with_policy(
        &self,
        quote: &NestedQuote,
        expected: &Digest32,
        allowed_inner_signer: &Digest32,
    ) -> bool {
        if !self.verify(quote) || &quote.mrenclave != expected {
            return false;
        }
        quote
            .relations
            .iter()
            .filter(|r| r.relation == crate::report::Relation::Inner)
            .all(|r| &r.mrsigner == allowed_inner_signer)
    }
}

/// Convenience: attest the enclave currently running on `core` to a
/// remote verifier via the QE. On return the core is back in untrusted
/// mode (the report traveled to the QE over untrusted IPC, and the QE ran
/// on the same core).
///
/// # Errors
///
/// Propagates NEREPORT and quoting failures.
pub fn attest_remote(
    machine: &mut Machine,
    core: usize,
    qe: &QuotingEnclave,
    report_data: ReportData,
) -> Result<NestedQuote> {
    let report = nereport(machine, core, qe.eid(), report_data)?;
    // The local report travels to the QE via untrusted IPC; tampering en
    // route is caught by the MAC verification inside the QE.
    machine.eexit(core)?;
    qe.quote(machine, core, &report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edl::Edl;
    use crate::loader::EnclaveImage;
    use crate::report::Relation;
    use crate::runtime::NestedApp;
    use ne_sgx::config::HwConfig;

    struct Fx {
        app: NestedApp,
        qe: QuotingEnclave,
    }

    fn fixture() -> Fx {
        let mut app = NestedApp::new(HwConfig::small());
        app.load(
            EnclaveImage::new("qe", b"intel-quoting")
                .heap_pages(1)
                .edl(Edl::new()),
            [],
        )
        .unwrap();
        app.load(
            EnclaveImage::new("hub", b"provider")
                .heap_pages(4)
                .edl(Edl::new()),
            [],
        )
        .unwrap();
        for n in ["a", "b"] {
            app.load(
                EnclaveImage::new(n, b"tenant")
                    .heap_pages(1)
                    .edl(Edl::new()),
                [],
            )
            .unwrap();
            app.associate(n, "hub").unwrap();
        }
        let qe_l = app.layout("qe").unwrap();
        let qe = QuotingEnclave::provision(&mut app.machine, 0, qe_l.eid, qe_l.base).unwrap();
        Fx { app, qe }
    }

    fn quote_of(fx: &mut Fx, name: &str) -> NestedQuote {
        let l = fx.app.layout(name).unwrap();
        fx.app.machine.eenter(0, l.eid, l.base).unwrap();
        attest_remote(&mut fx.app.machine, 0, &fx.qe, [7u8; 64]).unwrap()
    }

    #[test]
    fn remote_verifier_accepts_genuine_quote_with_relations() {
        let mut fx = fixture();
        let quote = quote_of(&mut fx, "hub");
        let verifier = RemoteVerifier::new(fx.qe.verification_key());
        assert!(verifier.verify(&quote));
        assert_eq!(
            quote
                .relations
                .iter()
                .filter(|r| r.relation == Relation::Inner)
                .count(),
            2,
            "the outer's quote lists both inner enclaves"
        );
    }

    #[test]
    fn tampered_quote_rejected() {
        let mut fx = fixture();
        let mut quote = quote_of(&mut fx, "hub");
        let verifier = RemoteVerifier::new(fx.qe.verification_key());
        quote.relations.pop(); // hide an inner enclave from the client
        assert!(!verifier.verify(&quote));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut fx = fixture();
        let quote = quote_of(&mut fx, "hub");
        assert!(!RemoteVerifier::new([0; 16]).verify(&quote));
    }

    #[test]
    fn policy_detects_foreign_inner_tenant() {
        let mut fx = fixture();
        // A foreign-signed inner joins the hub.
        fx.app
            .load(
                EnclaveImage::new("intruder", b"other-vendor")
                    .heap_pages(1)
                    .edl(Edl::new()),
                [],
            )
            .unwrap();
        fx.app.associate("intruder", "hub").unwrap();
        let quote = quote_of(&mut fx, "hub");
        let verifier = RemoteVerifier::new(fx.qe.verification_key());
        let hub_mre = quote.mrenclave;
        let tenant_signer = ne_crypto::sha256::digest(b"tenant");
        assert!(verifier.verify(&quote), "signature is fine");
        assert!(
            !verifier.verify_with_policy(&quote, &hub_mre, &tenant_signer),
            "but the policy spots the foreign tenant sharing the outer"
        );
    }

    #[test]
    fn policy_accepts_homogeneous_tenants() {
        let mut fx = fixture();
        let quote = quote_of(&mut fx, "hub");
        let verifier = RemoteVerifier::new(fx.qe.verification_key());
        let hub_mre = quote.mrenclave;
        let tenant_signer = ne_crypto::sha256::digest(b"tenant");
        assert!(verifier.verify_with_policy(&quote, &hub_mre, &tenant_signer));
    }

    #[test]
    fn qe_rejects_report_targeted_elsewhere() {
        let mut fx = fixture();
        // Report targeted at 'hub' instead of the QE.
        let a = fx.app.layout("a").unwrap();
        let hub_eid = fx.app.eid("hub").unwrap();
        fx.app.machine.eenter(0, a.eid, a.base).unwrap();
        let report = nereport(&mut fx.app.machine, 0, hub_eid, [0u8; 64]).unwrap();
        fx.app.machine.eexit(0).unwrap();
        let err = fx.qe.quote(&mut fx.app.machine, 0, &report).unwrap_err();
        assert!(matches!(err, SgxError::InitVerification(_)));
    }
}
