//! Sealed-state lifecycle: freeze an inner enclave's session state into a
//! versioned, MACed, counter-stamped blob, and gate tenant admission on a
//! verified NEREPORT chain (ROADMAP item 2).
//!
//! # Sealing
//!
//! [`seal_state`] runs **inside** the enclave (it needs `EGETKEY`, which
//! only answers in enclave mode) and produces a blob an untrusted host can
//! hold, ship across shards, and hand to a rebuilt enclave:
//!
//! ```text
//! header:  "NE-SEAL" | version u16 | tenant u64 | counter u64 | len u32
//! body:    nonce[12] | AES-128-GCM(seal_key, nonce, payload, aad=header)
//! ```
//!
//! The header is authenticated as GCM AAD, so tenant id, monotonic
//! counter, and length cannot be tampered without failing the tag; the
//! key comes from `EGETKEY(SealToEnclave)`, so only an enclave with the
//! **same measurement** — e.g. the same service image rebuilt after
//! `EREMOVE`, on this machine or a sibling shard — can open it. The nonce
//! is derived from the sealed content, keeping the whole pipeline
//! deterministic (same state + counter → same blob, byte for byte).
//!
//! # Rollback refusal
//!
//! The counter makes replay detectable: the host remembers the counter it
//! sealed with, and [`unseal_state`] refuses any blob whose counter is
//! below the expected floor with a typed
//! [`LifecycleError::Rollback`] — the same stance `ne-tls` takes on
//! version/cipher rollback offers. A stale-but-authentic blob is an
//! *attack*, not an error to recover from.
//!
//! # NEREPORT-gated admission
//!
//! [`attest_chain`] drives the paper's § IV-E nested attestation as an
//! admission gate: the inner enclave issues a NEREPORT targeted at its
//! gate ([`collect_report`]), and the gate verifies it
//! ([`admit_report`]) — MAC first, then freshness (the caller's nonce
//! must echo in `report_data`), then the reporter's live measurement,
//! then that the relation list names the gate as an **outer** of the
//! reporter. Each failure is a distinct [`AttestError`] so the host can
//! count refusal reasons per tenant.

use crate::report::{nereport, verify_nested_report, NestedReport, Relation};
use crate::runtime::{EnclaveCtx, NestedApp};
use ne_crypto::gcm::AesGcm;
use ne_sgx::attest::{KeyPolicy, ReportData};
use ne_sgx::error::SgxError;
use std::fmt;

/// Magic prefix of every sealed-state blob.
const MAGIC: &[u8; 7] = b"NE-SEAL";
/// Current sealed-state format version.
const VERSION: u16 = 1;
/// Header length: magic + version + tenant + counter + payload length.
const HEADER_LEN: usize = 7 + 2 + 8 + 8 + 4;
/// GCM nonce length.
const NONCE_LEN: usize = 12;
/// GCM tag length.
const TAG_LEN: usize = 16;

/// Why a sealed blob could not be produced or opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleError {
    /// The blob ended before the structure its header promised.
    Truncated,
    /// The blob does not start with the sealed-state magic.
    BadMagic,
    /// The blob's format version is not one this build reads.
    BadVersion(u16),
    /// The blob was sealed for a different tenant.
    WrongTenant {
        /// Tenant id stamped in the blob.
        presented: u64,
        /// Tenant id the caller expected.
        expected: u64,
    },
    /// The GCM tag did not verify: forged, corrupted, or sealed by an
    /// enclave with a different measurement.
    BadMac,
    /// Replay refused: the blob is authentic but its monotonic counter is
    /// below the expected floor — someone is feeding back old state.
    Rollback {
        /// Counter stamped in the (authentic) blob.
        presented: u64,
        /// Lowest counter the caller accepts.
        expected: u64,
    },
    /// An architectural fault (e.g. `EGETKEY` outside enclave mode).
    Sgx(SgxError),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::Truncated => write!(f, "sealed blob truncated"),
            LifecycleError::BadMagic => write!(f, "not a sealed-state blob"),
            LifecycleError::BadVersion(v) => write!(f, "unsupported sealed-state version {v}"),
            LifecycleError::WrongTenant {
                presented,
                expected,
            } => write!(f, "blob sealed for tenant {presented}, expected {expected}"),
            LifecycleError::BadMac => write!(f, "sealed blob failed authentication"),
            LifecycleError::Rollback {
                presented,
                expected,
            } => write!(
                f,
                "rollback refused: sealed counter {presented} below expected {expected}"
            ),
            LifecycleError::Sgx(e) => write!(f, "sgx: {e}"),
        }
    }
}

impl std::error::Error for LifecycleError {}

impl From<SgxError> for LifecycleError {
    fn from(e: SgxError) -> LifecycleError {
        LifecycleError::Sgx(e)
    }
}

fn header(tenant: u64, counter: u64, payload_len: usize) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..7].copy_from_slice(MAGIC);
    h[7..9].copy_from_slice(&VERSION.to_le_bytes());
    h[9..17].copy_from_slice(&tenant.to_le_bytes());
    h[17..25].copy_from_slice(&counter.to_le_bytes());
    h[25..29].copy_from_slice(&(payload_len as u32).to_le_bytes());
    h
}

/// Reads the (unauthenticated) header of a sealed blob: `(tenant,
/// counter, payload_len)`. The untrusted host uses this to route blobs
/// and pre-check counters; nothing read here is trusted until
/// [`unseal_state`] verifies the tag over the same bytes as AAD.
///
/// # Errors
///
/// [`LifecycleError::Truncated`] / [`LifecycleError::BadMagic`] /
/// [`LifecycleError::BadVersion`] on malformed input.
pub fn peek_header(blob: &[u8]) -> Result<(u64, u64, usize), LifecycleError> {
    if blob.len() < HEADER_LEN {
        return Err(LifecycleError::Truncated);
    }
    if &blob[..7] != MAGIC {
        return Err(LifecycleError::BadMagic);
    }
    let version = u16::from_le_bytes(blob[7..9].try_into().unwrap());
    if version != VERSION {
        return Err(LifecycleError::BadVersion(version));
    }
    let tenant = u64::from_le_bytes(blob[9..17].try_into().unwrap());
    let counter = u64::from_le_bytes(blob[17..25].try_into().unwrap());
    let len = u32::from_le_bytes(blob[25..29].try_into().unwrap()) as usize;
    Ok((tenant, counter, len))
}

/// Seals `payload` for `tenant` at monotonic `counter`, inside the
/// enclave running in `cx`. Only an enclave with the same measurement
/// can unseal the result (`EGETKEY(SealToEnclave)` key derivation).
///
/// # Errors
///
/// [`LifecycleError::Sgx`] if the seal key cannot be derived.
pub fn seal_state(
    cx: &mut EnclaveCtx<'_>,
    tenant: u64,
    counter: u64,
    payload: &[u8],
) -> Result<Vec<u8>, LifecycleError> {
    let key = cx.machine.egetkey(cx.core(), KeyPolicy::SealToEnclave)?;
    let hdr = header(tenant, counter, payload.len());
    let mut nonce_src = Vec::with_capacity(HEADER_LEN + payload.len());
    nonce_src.extend_from_slice(&hdr);
    nonce_src.extend_from_slice(payload);
    let digest = ne_crypto::sha256::digest(&nonce_src);
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(&digest[..NONCE_LEN]);
    let ct = AesGcm::new(&key).seal(&nonce, payload, &hdr);
    let mut blob = Vec::with_capacity(HEADER_LEN + NONCE_LEN + ct.len());
    blob.extend_from_slice(&hdr);
    blob.extend_from_slice(&nonce);
    blob.extend_from_slice(&ct);
    Ok(blob)
}

/// Opens a sealed blob inside the enclave running in `cx`, returning
/// `(counter, payload)`. The caller states which `tenant` it serves and
/// the lowest counter it accepts (`min_counter`, the replay floor).
///
/// # Errors
///
/// Malformed blobs yield the typed parse errors; a failed GCM tag yields
/// [`LifecycleError::BadMac`]; an authentic blob with `counter <
/// min_counter` yields [`LifecycleError::Rollback`] — the rollback check
/// runs **after** authentication, so the refusal proves someone replayed
/// genuine old state rather than garbage.
pub fn unseal_state(
    cx: &mut EnclaveCtx<'_>,
    tenant: u64,
    min_counter: u64,
    blob: &[u8],
) -> Result<(u64, Vec<u8>), LifecycleError> {
    let (blob_tenant, counter, payload_len) = peek_header(blob)?;
    if blob_tenant != tenant {
        return Err(LifecycleError::WrongTenant {
            presented: blob_tenant,
            expected: tenant,
        });
    }
    if blob.len() != HEADER_LEN + NONCE_LEN + payload_len + TAG_LEN {
        return Err(LifecycleError::Truncated);
    }
    let key = cx.machine.egetkey(cx.core(), KeyPolicy::SealToEnclave)?;
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(&blob[HEADER_LEN..HEADER_LEN + NONCE_LEN]);
    let hdr = header(blob_tenant, counter, payload_len);
    let payload = AesGcm::new(&key)
        .open(&nonce, &blob[HEADER_LEN + NONCE_LEN..], &hdr)
        .map_err(|_| LifecycleError::BadMac)?;
    if counter < min_counter {
        return Err(LifecycleError::Rollback {
            presented: counter,
            expected: min_counter,
        });
    }
    Ok((counter, payload))
}

// ---------------------------------------------------------------------------
// NEREPORT-gated admission
// ---------------------------------------------------------------------------

/// Why an attestation chain was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestError {
    /// The report MAC did not verify under the verifier's report key —
    /// forged, tampered, or targeted at a different enclave.
    BadMac,
    /// The report is authentic but stale: `report_data` does not echo the
    /// verifier's challenge nonce.
    Freshness,
    /// The reported measurement does not match the live enclave the host
    /// claims produced it.
    MeasurementMismatch,
    /// The relation list does not name the verifying gate as an outer
    /// enclave of the reporter — the NASSO chain the paper's § IV-E
    /// attestation must prove is missing or tampered.
    NotAssociated,
    /// An architectural fault while driving the chain.
    Sgx(SgxError),
}

impl AttestError {
    /// Stable snake_case name (per-tenant refusal counters).
    pub fn name(&self) -> &'static str {
        match self {
            AttestError::BadMac => "bad_mac",
            AttestError::Freshness => "freshness",
            AttestError::MeasurementMismatch => "measurement_mismatch",
            AttestError::NotAssociated => "not_associated",
            AttestError::Sgx(_) => "sgx_fault",
        }
    }
}

impl fmt::Display for AttestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestError::BadMac => write!(f, "report MAC failed verification"),
            AttestError::Freshness => write!(f, "report does not echo the challenge nonce"),
            AttestError::MeasurementMismatch => {
                write!(f, "reported measurement does not match the live enclave")
            }
            AttestError::NotAssociated => {
                write!(f, "relation list does not prove association with the gate")
            }
            AttestError::Sgx(e) => write!(f, "sgx: {e}"),
        }
    }
}

impl std::error::Error for AttestError {}

impl From<SgxError> for AttestError {
    fn from(e: SgxError) -> AttestError {
        AttestError::Sgx(e)
    }
}

/// Has the inner enclave `inner` issue a NEREPORT targeted at `gate`,
/// echoing the verifier's 32-byte challenge `nonce` in `report_data`.
///
/// # Errors
///
/// [`AttestError::Sgx`] if either enclave is unknown or entry faults
/// (e.g. the enclave was chaos-poisoned).
pub fn collect_report(
    app: &mut NestedApp,
    core: usize,
    inner: &str,
    gate: &str,
    nonce: &[u8; 32],
) -> Result<NestedReport, AttestError> {
    let inner_layout = app.layout(inner)?;
    let gate_eid = app.eid(gate)?;
    let mut report_data: ReportData = [0u8; 64];
    report_data[..32].copy_from_slice(nonce);
    app.machine
        .eenter(core, inner_layout.eid, inner_layout.base)?;
    let report = nereport(&mut app.machine, core, gate_eid, report_data);
    app.machine.eexit(core)?;
    Ok(report?)
}

/// Verifies a NEREPORT inside the gate enclave `gate`, admitting the
/// inner enclave `inner` only if the full chain holds: MAC, nonce echo,
/// live measurement, and an outer-relation record naming the gate.
///
/// # Errors
///
/// One typed [`AttestError`] per broken link, checked in that order.
pub fn admit_report(
    app: &mut NestedApp,
    core: usize,
    gate: &str,
    inner: &str,
    nonce: &[u8; 32],
    report: &NestedReport,
) -> Result<(), AttestError> {
    let gate_layout = app.layout(gate)?;
    let inner_eid = app.eid(inner)?;
    app.machine
        .eenter(core, gate_layout.eid, gate_layout.base)?;
    let mac_ok = verify_nested_report(&mut app.machine, core, report);
    app.machine.eexit(core)?;
    if !mac_ok? {
        return Err(AttestError::BadMac);
    }
    if report.report_data[..32] != nonce[..] {
        return Err(AttestError::Freshness);
    }
    let (inner_mr, inner_signer) = {
        let secs = app
            .machine
            .enclaves()
            .get(inner_eid)
            .ok_or_else(|| SgxError::GeneralProtection("attested enclave vanished".into()))?;
        (secs.mrenclave, secs.mrsigner)
    };
    if report.mrenclave != inner_mr || report.mrsigner != inner_signer {
        return Err(AttestError::MeasurementMismatch);
    }
    let gate_mr = {
        let secs = app
            .machine
            .enclaves()
            .get(gate_layout.eid)
            .ok_or_else(|| SgxError::GeneralProtection("gate enclave vanished".into()))?;
        secs.mrenclave
    };
    let associated = report
        .relations
        .iter()
        .any(|r| r.relation == Relation::Outer && r.mrenclave == gate_mr);
    if !associated {
        return Err(AttestError::NotAssociated);
    }
    Ok(())
}

/// Drives the full admission chain for one (gate, inner) pair: the inner
/// enclave reports, the gate verifies. Returns the verified report so
/// callers can log or forward it.
///
/// # Errors
///
/// See [`collect_report`] and [`admit_report`].
pub fn attest_chain(
    app: &mut NestedApp,
    core: usize,
    gate: &str,
    inner: &str,
    nonce: &[u8; 32],
) -> Result<NestedReport, AttestError> {
    let report = collect_report(app, core, inner, gate, nonce)?;
    admit_report(app, core, gate, inner, nonce, &report)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edl::Edl;
    use crate::loader::EnclaveImage;

    fn app_with_pair() -> NestedApp {
        use crate::runtime::TrustedFn;
        use std::sync::Arc;
        let noop: TrustedFn = Arc::new(|_, _| Ok(Vec::new()));
        let mut app = NestedApp::new(ne_sgx::config::HwConfig::small());
        let gate = EnclaveImage::new("gate", b"gate-signer")
            .code_pages(2)
            .heap_pages(2)
            .edl(Edl::new().ecall("noop"));
        let inner = EnclaveImage::new("inner", b"inner-signer")
            .code_pages(2)
            .heap_pages(2)
            .edl(Edl::new().ecall("noop"));
        app.load(gate, [("noop".to_string(), noop.clone())])
            .unwrap();
        app.load(inner, [("noop".to_string(), noop)]).unwrap();
        app.associate("inner", "gate").unwrap();
        app
    }

    /// Runs `f` with an [`EnclaveCtx`] that is actually *inside* the
    /// named enclave (EGETKEY answers only in enclave mode).
    fn inside<R>(app: &mut NestedApp, name: &str, f: impl FnOnce(&mut EnclaveCtx<'_>) -> R) -> R {
        let layout = app.layout(name).unwrap();
        app.machine.eenter(0, layout.eid, layout.base).unwrap();
        let r = {
            let mut cx = app.enclave_ctx(0, name);
            f(&mut cx)
        };
        app.machine.eexit(0).unwrap();
        r
    }

    #[test]
    fn seal_unseal_roundtrip_and_determinism() {
        let mut app = app_with_pair();
        let blob = inside(&mut app, "inner", |cx| {
            seal_state(cx, 7, 3, b"session state").unwrap()
        });
        let blob2 = inside(&mut app, "inner", |cx| {
            seal_state(cx, 7, 3, b"session state").unwrap()
        });
        assert_eq!(blob, blob2, "sealing is deterministic");
        let (counter, payload) = inside(&mut app, "inner", |cx| {
            unseal_state(cx, 7, 3, &blob).unwrap()
        });
        assert_eq!((counter, payload.as_slice()), (3, &b"session state"[..]));
        assert_eq!(peek_header(&blob).unwrap(), (7, 3, 13));
    }

    #[test]
    fn unseal_requires_same_measurement() {
        let mut app = app_with_pair();
        let blob = inside(&mut app, "inner", |cx| {
            seal_state(cx, 1, 0, b"secret").unwrap()
        });
        // The gate has a different measurement: EGETKEY derives a
        // different key, so the tag cannot verify.
        let r = inside(&mut app, "gate", |cx| unseal_state(cx, 1, 0, &blob));
        assert_eq!(r, Err(LifecycleError::BadMac));
    }

    #[test]
    fn tampered_header_or_body_is_refused() {
        let mut app = app_with_pair();
        let blob = inside(&mut app, "inner", |cx| {
            seal_state(cx, 1, 5, b"state bytes").unwrap()
        });
        // Flip the counter in the header: AAD breaks the tag.
        let mut forged = blob.clone();
        forged[17] ^= 1;
        let r = inside(&mut app, "inner", |cx| unseal_state(cx, 1, 0, &forged));
        assert_eq!(r, Err(LifecycleError::BadMac));
        // Flip a ciphertext byte.
        let mut forged = blob.clone();
        let n = forged.len();
        forged[n - 1] ^= 1;
        let r = inside(&mut app, "inner", |cx| unseal_state(cx, 1, 0, &forged));
        assert_eq!(r, Err(LifecycleError::BadMac));
        // Wrong tenant is refused before any crypto.
        let r = inside(&mut app, "inner", |cx| unseal_state(cx, 2, 0, &blob));
        assert_eq!(
            r,
            Err(LifecycleError::WrongTenant {
                presented: 1,
                expected: 2
            })
        );
        // Truncation and magic.
        let r = inside(&mut app, "inner", |cx| unseal_state(cx, 1, 0, &blob[..10]));
        assert_eq!(r, Err(LifecycleError::Truncated));
        let r = inside(&mut app, "inner", |cx| {
            unseal_state(cx, 1, 0, b"XX-JUNK\x01\x00aaaaaaaabbbbbbbbcccc")
        });
        assert_eq!(r, Err(LifecycleError::BadMagic));
    }

    #[test]
    fn stale_counter_is_a_typed_rollback() {
        let mut app = app_with_pair();
        let old = inside(&mut app, "inner", |cx| {
            seal_state(cx, 1, 4, b"old").unwrap()
        });
        // Counter floor has moved to 5: the authentic old blob is refused.
        let r = inside(&mut app, "inner", |cx| unseal_state(cx, 1, 5, &old));
        assert_eq!(
            r,
            Err(LifecycleError::Rollback {
                presented: 4,
                expected: 5
            })
        );
        // At or above the floor it opens.
        let r = inside(&mut app, "inner", |cx| unseal_state(cx, 1, 4, &old));
        assert!(r.is_ok());
    }

    #[test]
    fn attest_chain_admits_associated_inner() {
        let mut app = app_with_pair();
        let nonce = [9u8; 32];
        let report = attest_chain(&mut app, 0, "gate", "inner", &nonce).unwrap();
        assert!(report
            .relations
            .iter()
            .any(|r| r.relation == Relation::Outer));
    }

    #[test]
    fn attest_chain_refusals_are_typed() {
        let mut app = app_with_pair();
        let nonce = [9u8; 32];
        let report = collect_report(&mut app, 0, "inner", "gate", &nonce).unwrap();

        // Forged MAC.
        let mut forged = report.clone();
        forged.mac[0] ^= 1;
        assert_eq!(
            admit_report(&mut app, 0, "gate", "inner", &nonce, &forged),
            Err(AttestError::BadMac)
        );

        // Tampered relation list (drop the outer record) breaks the MAC
        // — the relations are inside the MACed body.
        let mut forged = report.clone();
        forged.relations.clear();
        assert_eq!(
            admit_report(&mut app, 0, "gate", "inner", &nonce, &forged),
            Err(AttestError::BadMac)
        );

        // Stale nonce.
        assert_eq!(
            admit_report(&mut app, 0, "gate", "inner", &[0u8; 32], &report),
            Err(AttestError::Freshness)
        );

        // Report targeted at a non-associated verifier: the gate's key
        // cannot verify it.
        let other = collect_report(&mut app, 0, "inner", "inner", &nonce).unwrap();
        assert_eq!(
            admit_report(&mut app, 0, "gate", "inner", &nonce, &other),
            Err(AttestError::BadMac)
        );
    }
}
