#![deny(missing_docs)]

//! # ne-core — Nested Enclave (ISCA 2020) on the `ne-sgx` simulator
//!
//! The paper's contribution, reproduced end to end:
//!
//! * [`validate::NestedValidator`] — the extended TLB-miss validation flow
//!   of Fig. 6 (inner enclaves may touch their outer enclave's memory,
//!   never the reverse), including § VIII's multi-level nesting and
//!   multiple-outer (lattice) extensions.
//! * [`nasso()`] — the `NASSO` association instruction with cross-validated
//!   expected identities (Fig. 4, § IV-B).
//! * [`transitions`] — `NEENTER`/`NEEXIT`, the direct inner↔outer
//!   transitions with TLB-flush and register-scrub semantics (Fig. 5).
//! * [`report`] — `NEREPORT`, attestation extended with nesting relations.
//! * [`edl`], [`loader`], [`runtime`] — the SDK layer: EDL interfaces with
//!   `n_ecall`/`n_ocall`, signed enclave images with embedded counterpart
//!   expectations, and the dispatch runtime that drives the instructions.
//! * [`channel`] — the § VI-C communication story: the MEE-protected
//!   outer-enclave channel vs. the software-GCM untrusted channel.
//!
//! # Example: confine a library in the outer enclave
//!
//! ```
//! use ne_core::edl::Edl;
//! use ne_core::loader::EnclaveImage;
//! use ne_core::runtime::{EnclaveCtx, NestedApp, TrustedFn};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), ne_sgx::error::SgxError> {
//! let mut app = NestedApp::new(ne_sgx::config::HwConfig::small());
//! // Outer enclave: an untrusted 3rd-party library.
//! let lib = EnclaveImage::new("ssl-lib", b"openssl-project")
//!     .edl(Edl::new());
//! let encrypt: TrustedFn = Arc::new(|_cx: &mut EnclaveCtx<'_>, args: &[u8]| {
//!     Ok(args.iter().map(|b| b ^ 0x42).collect())
//! });
//! app.load(lib, [("encrypt".to_string(), encrypt)])?;
//! // Inner enclave: privacy-sensitive application code.
//! let main = EnclaveImage::new("main-app", b"service-provider")
//!     .edl(Edl::new().ecall("handle").n_ocall("encrypt"));
//! let handle: TrustedFn = Arc::new(|cx: &mut EnclaveCtx<'_>, args: &[u8]| {
//!     cx.n_ocall("encrypt", args) // library call with procedure-call syntax
//! });
//! app.load(main, [("handle".to_string(), handle)])?;
//! app.associate("main-app", "ssl-lib")?;
//! let out = app.ecall(0, "main-app", "handle", b"hi")?;
//! assert_eq!(out, vec![b'h' ^ 0x42, b'i' ^ 0x42]);
//! # Ok(())
//! # }
//! ```

pub mod channel;
pub mod concurrent;
pub mod edl;
pub mod lifecycle;
pub mod loader;
pub mod nasso;
pub mod quote;
pub mod rendezvous;
pub mod report;
pub mod runtime;
pub mod switchless;
pub mod transitions;
pub mod validate;

pub use channel::{OuterChannel, UntrustedChannel};
pub use concurrent::SharedApp;
pub use edl::Edl;
pub use lifecycle::{
    attest_chain, peek_header, seal_state, unseal_state, AttestError, LifecycleError,
};
pub use loader::{load_image, EnclaveImage, LoadedLayout};
pub use nasso::{nasso, AssocPolicy, ExpectedIdentity};
pub use quote::{attest_remote, NestedQuote, QuotingEnclave, RemoteVerifier};
pub use rendezvous::{accept_channel, offer_channel, ChannelOffer};
pub use report::{nereport, verify_nested_report, NestedReport, Relation};
pub use runtime::{EnclaveCtx, NestedApp, TrustedFn, UntrustedCtx, UntrustedFn};
pub use switchless::SwitchlessQueue;
pub use transitions::{neenter, neexit, neexit_to};
pub use validate::NestedValidator;
