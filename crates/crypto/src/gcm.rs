//! AES-128-GCM authenticated encryption (NIST SP 800-38D).
//!
//! This is the "GCM" series of the paper's Fig. 11: the software
//! authenticated-encryption baseline that monolithic enclaves must run to
//! communicate through untrusted memory. Nested enclaves avoid it by
//! communicating through the MEE-protected outer enclave instead.

use crate::aes::Aes128;
use crate::ct::ct_eq;

/// Error returned by [`AesGcm::open`] when the authentication tag fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenError;

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "authentication tag mismatch")
    }
}

impl std::error::Error for OpenError {}

/// AES-128-GCM cipher with a fixed key.
///
/// # Example
///
/// ```
/// use ne_crypto::gcm::AesGcm;
///
/// let cipher = AesGcm::new(&[0x42; 16]);
/// let sealed = cipher.seal(&[0; 12], b"payload", b"header");
/// assert_eq!(cipher.open(&[0; 12], &sealed, b"header").unwrap(), b"payload");
/// assert!(cipher.open(&[0; 12], &sealed, b"tampered").is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AesGcm {
    aes: Aes128,
    /// GHASH subkey H = E_K(0^128), kept as a u128 for the GF multiply.
    h: u128,
    /// Shoup 8-bit multiplication table: `mul_table[b]` is the product
    /// `(b·t⁰…t⁷)·H`, i.e. the byte `b` placed at the top of a field
    /// element, times H. Multiplying a full element by H then takes 16
    /// table lookups (one per byte, most-significant-coefficient last)
    /// instead of the 128-iteration bit loop in [`gf_mult`]; the profiles
    /// of the serving benches had that loop as the single hottest
    /// function. The tables are filled by linearity from the 8 products
    /// `t^k·H`, so construction costs 8 field shifts and 255 XORs.
    mul_table: Box<[u128; 256]>,
}

/// Reduction table for shifting a field element right by one byte:
/// `v·t⁸ = (v >> 8) ^ SHIFT8_REDUCE[v & 0xff]`. Depends only on the GCM
/// polynomial, so it is computed at compile time.
static SHIFT8_REDUCE: [u128; 256] = build_shift8_reduce();

/// One bit-position shift in GCM's reflected representation: multiply by
/// `t`, reducing by the field polynomial when a coefficient falls off.
const fn shift1(v: u128) -> u128 {
    const R: u128 = 0xe100_0000_0000_0000_0000_0000_0000_0000;
    let lsb = v & 1;
    let v = v >> 1;
    if lsb == 1 {
        v ^ R
    } else {
        v
    }
}

const fn build_shift8_reduce() -> [u128; 256] {
    let mut tab = [0u128; 256];
    let mut m = 0usize;
    while m < 256 {
        // The correction term is what the low byte alone turns into after
        // eight reduced single-bit shifts (the high bits shift cleanly).
        let mut v = m as u128;
        let mut k = 0;
        while k < 8 {
            v = shift1(v);
            k += 1;
        }
        tab[m] = v;
        m += 1;
    }
    tab
}

/// Size of the GCM authentication tag appended to every sealed message.
pub const TAG_LEN: usize = 16;

impl AesGcm {
    /// Creates a cipher for the 128-bit `key`.
    pub fn new(key: &[u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let mut h_block = [0u8; 16];
        aes.encrypt_block(&mut h_block);
        let h = u128::from_be_bytes(h_block);
        // Basis products t^k·H for k = 0..8; the top bit is the field's
        // multiplicative identity in this representation, so t⁰·H = H.
        let mut basis = [0u128; 8];
        basis[0] = h;
        for k in 1..8 {
            basis[k] = shift1(basis[k - 1]);
        }
        let mut mul_table = Box::new([0u128; 256]);
        for b in 1usize..256 {
            // Linearity over GF(2): fold in the lowest set bit. Bit j of
            // the byte is the coefficient of t^(7-j).
            let low = b & b.wrapping_neg();
            mul_table[b] = mul_table[b ^ low] ^ basis[7 - low.trailing_zeros() as usize];
        }
        AesGcm { aes, h, mul_table }
    }

    /// Multiplies `z` by the subkey H via the byte table: Horner over the
    /// 16 bytes of `z`, least-significant (highest-degree) byte first.
    /// Architecturally identical to `gf_mult(z, self.h)`, which the tests
    /// verify and which [`crate::set_reference_impl`] selects at runtime so
    /// the wall-clock harness can price the table walk.
    fn mul_h(&self, z: u128) -> u128 {
        if crate::reference_impl() {
            return gf_mult(z, self.h);
        }
        let mut acc = 0u128;
        for i in 0..16 {
            let byte = ((z >> (8 * i)) & 0xff) as usize;
            acc = (acc >> 8) ^ SHIFT8_REDUCE[(acc & 0xff) as usize] ^ self.mul_table[byte];
        }
        acc
    }

    /// Encrypts `plaintext` with additional authenticated data `aad`,
    /// returning `ciphertext || tag`.
    ///
    /// The caller must never reuse a `nonce` with the same key.
    pub fn seal(&self, nonce: &[u8; 12], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        self.ctr_xor(nonce, 2, &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `sealed` (as produced by [`AesGcm::seal`]) and verifies the
    /// tag.
    ///
    /// # Errors
    ///
    /// Returns [`OpenError`] if `sealed` is shorter than a tag or the tag
    /// does not verify (wrong key, nonce, AAD, or tampered ciphertext).
    pub fn open(&self, nonce: &[u8; 12], sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>, OpenError> {
        if sealed.len() < TAG_LEN {
            return Err(OpenError);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.tag(nonce, aad, ct);
        if !ct_eq(&expected, tag) {
            return Err(OpenError);
        }
        let mut out = ct.to_vec();
        self.ctr_xor(nonce, 2, &mut out);
        Ok(out)
    }

    /// CTR-mode keystream XOR starting at block counter `ctr0`.
    fn ctr_xor(&self, nonce: &[u8; 12], ctr0: u32, data: &mut [u8]) {
        let mut counter = ctr0;
        for chunk in data.chunks_mut(16) {
            let mut block = [0u8; 16];
            block[..12].copy_from_slice(nonce);
            block[12..].copy_from_slice(&counter.to_be_bytes());
            self.aes.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    fn tag(&self, nonce: &[u8; 12], aad: &[u8], ct: &[u8]) -> [u8; 16] {
        let mut ghash = 0u128;
        self.ghash_update(&mut ghash, aad);
        self.ghash_update(&mut ghash, ct);
        let mut len_block = [0u8; 16];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((ct.len() as u64) * 8).to_be_bytes());
        ghash = self.mul_h(ghash ^ u128::from_be_bytes(len_block));

        // E_K(J0) where J0 = nonce || 0^31 || 1.
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        self.aes.encrypt_block(&mut j0);
        (ghash ^ u128::from_be_bytes(j0)).to_be_bytes()
    }
    fn ghash_update(&self, acc: &mut u128, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            *acc = self.mul_h(*acc ^ u128::from_be_bytes(block));
        }
    }
}

/// Carry-less multiply in GF(2^128) with the GCM reduction polynomial: the
/// bit-by-bit reference implementation that [`AesGcm::mul_h`]'s table walk
/// must agree with (tested below, and selectable at runtime via
/// [`crate::set_reference_impl`]).
fn gf_mult(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe100_0000_0000_0000_0000_0000_0000_0000;
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST GCM test case 1: empty plaintext, empty AAD, zero key/IV.
    #[test]
    fn nist_case1_empty() {
        let cipher = AesGcm::new(&[0u8; 16]);
        let sealed = cipher.seal(&[0u8; 12], b"", b"");
        assert_eq!(hex(&sealed), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    // NIST GCM test case 2: single zero block.
    #[test]
    fn nist_case2_zero_block() {
        let cipher = AesGcm::new(&[0u8; 16]);
        let sealed = cipher.seal(&[0u8; 12], &[0u8; 16], b"");
        assert_eq!(
            hex(&sealed),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
        );
    }

    // NIST GCM test case 4: 60-byte plaintext with 20-byte AAD.
    #[test]
    fn nist_case4_with_aad() {
        let key = [
            0xfe, 0xff, 0xe9, 0x92, 0x86, 0x65, 0x73, 0x1c, 0x6d, 0x6a, 0x8f, 0x94, 0x67, 0x30,
            0x83, 0x08,
        ];
        let nonce = [
            0xca, 0xfe, 0xba, 0xbe, 0xfa, 0xce, 0xdb, 0xad, 0xde, 0xca, 0xf8, 0x88,
        ];
        let pt: Vec<u8> = vec![
            0xd9, 0x31, 0x32, 0x25, 0xf8, 0x84, 0x06, 0xe5, 0xa5, 0x59, 0x09, 0xc5, 0xaf, 0xf5,
            0x26, 0x9a, 0x86, 0xa7, 0xa9, 0x53, 0x15, 0x34, 0xf7, 0xda, 0x2e, 0x4c, 0x30, 0x3d,
            0x8a, 0x31, 0x8a, 0x72, 0x1c, 0x3c, 0x0c, 0x95, 0x95, 0x68, 0x09, 0x53, 0x2f, 0xcf,
            0x0e, 0x24, 0x49, 0xa6, 0xb5, 0x25, 0xb1, 0x6a, 0xed, 0xf5, 0xaa, 0x0d, 0xe6, 0x57,
            0xba, 0x63, 0x7b, 0x39,
        ];
        let aad: Vec<u8> = vec![
            0xfe, 0xed, 0xfa, 0xce, 0xde, 0xad, 0xbe, 0xef, 0xfe, 0xed, 0xfa, 0xce, 0xde, 0xad,
            0xbe, 0xef, 0xab, 0xad, 0xda, 0xd2,
        ];
        let cipher = AesGcm::new(&key);
        let sealed = cipher.seal(&nonce, &pt, &aad);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(
            hex(ct),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
        );
        assert_eq!(hex(tag), "5bc94fbc3221a5db94fae95ae7121a47");
        assert_eq!(cipher.open(&nonce, &sealed, &aad).unwrap(), pt);
    }

    #[test]
    fn table_multiply_matches_bitwise_reference() {
        let cipher = AesGcm::new(&[0x5au8; 16]);
        let mut s = 0x243f6a8885a308d3u128 | 1;
        for _ in 0..500 {
            // xorshift-style u128 stream; exact constants irrelevant.
            s ^= s << 29;
            s ^= s >> 51;
            s ^= s << 13;
            assert_eq!(cipher.mul_h(s), gf_mult(s, cipher.h), "z = {s:032x}");
        }
        assert_eq!(cipher.mul_h(0), 0);
        assert_eq!(cipher.mul_h(1 << 127), cipher.h, "top bit is identity");
    }

    #[test]
    fn roundtrip_various_lengths() {
        let cipher = AesGcm::new(&[3u8; 16]);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 255, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let nonce = [len as u8; 12];
            let sealed = cipher.seal(&nonce, &pt, b"aad");
            assert_eq!(
                cipher.open(&nonce, &sealed, b"aad").unwrap(),
                pt,
                "len {len}"
            );
        }
    }

    #[test]
    fn tamper_detected() {
        let cipher = AesGcm::new(&[3u8; 16]);
        let mut sealed = cipher.seal(&[0u8; 12], b"secret message", b"");
        sealed[0] ^= 1;
        assert_eq!(cipher.open(&[0u8; 12], &sealed, b""), Err(OpenError));
    }

    #[test]
    fn short_input_rejected() {
        let cipher = AesGcm::new(&[3u8; 16]);
        assert_eq!(cipher.open(&[0u8; 12], &[0u8; 5], b""), Err(OpenError));
    }

    #[test]
    fn wrong_nonce_rejected() {
        let cipher = AesGcm::new(&[3u8; 16]);
        let sealed = cipher.seal(&[1u8; 12], b"msg", b"");
        assert!(cipher.open(&[2u8; 12], &sealed, b"").is_err());
    }
}
