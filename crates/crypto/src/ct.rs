//! Constant-time helpers.

/// Compares two byte slices without early exit.
///
/// Returns `false` for slices of different lengths. The comparison time
/// depends only on the lengths, not the contents, which prevents the timing
/// side channel a naive `==` would introduce in tag verification.
///
/// # Example
///
/// ```
/// assert!(ne_crypto::ct::ct_eq(b"abc", b"abc"));
/// assert!(!ne_crypto::ct::ct_eq(b"abc", b"abd"));
/// assert!(!ne_crypto::ct::ct_eq(b"abc", b"ab"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn equal() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn unequal_content() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[0], &[255]));
    }

    #[test]
    fn unequal_length() {
        assert!(!ct_eq(&[1, 2], &[1, 2, 3]));
    }
}
