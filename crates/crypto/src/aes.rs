//! AES-128 block cipher (FIPS 197), implemented from scratch.
//!
//! This is the block primitive under [`crate::gcm`], which the paper's
//! baseline uses for software-encrypted enclave-to-enclave channels. The
//! round function is table-driven: one 1 KiB table combines SubBytes,
//! ShiftRows and MixColumns, so a round is 16 lookups and a handful of
//! XORs instead of per-byte field arithmetic. Profiles of the serving
//! benches put the previous byte-wise rounds at the top of the wall-clock
//! ledger; the table form computes the identical permutation (the tests
//! check it against a byte-wise reference round).

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Combined SubBytes + MixColumns table for a row-0 byte: packs the column
/// `(2·S[x], S[x], S[x], 3·S[x])` into a big-endian word. The tables for
/// rows 1–3 are byte rotations of this one (the MixColumns matrix is
/// circulant), so `TE0[x].rotate_right(8·r)` serves every row.
static TE0: [u32; 256] = build_te0();

const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut x = 0usize;
    while x < 256 {
        let s = SBOX[x] as u32;
        let s2 = ((s << 1) ^ (if s & 0x80 != 0 { 0x1b } else { 0 })) & 0xff;
        let s3 = s2 ^ s;
        t[x] = (s2 << 24) | (s << 16) | (s << 8) | s3;
        x += 1;
    }
    t
}

/// AES-128 with a pre-expanded key schedule.
///
/// Only encryption is provided; GCM (CTR mode) never needs the inverse
/// cipher.
///
/// # Example
///
/// ```
/// use ne_crypto::aes::Aes128;
///
/// let aes = Aes128::new(&[0u8; 16]);
/// let mut block = [0u8; 16];
/// aes.encrypt_block(&mut block);
/// assert_ne!(block, [0u8; 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    /// Round keys, one big-endian word per column.
    rk: [[u32; 4]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp = [
                    SBOX[temp[1] as usize] ^ RCON[i / 4 - 1],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                    SBOX[temp[0] as usize],
                ];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut rk = [[0u32; 4]; 11];
        for r in 0..11 {
            for c in 0..4 {
                rk[r][c] = u32::from_be_bytes(w[4 * r + c]);
            }
        }
        Aes128 { rk }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        if crate::reference_impl() {
            return self.encrypt_block_reference(block);
        }
        // State as one big-endian word per column; byte r of word c is the
        // state byte at row r, column c.
        let mut w = [0u32; 4];
        for c in 0..4 {
            w[c] = u32::from_be_bytes([
                block[4 * c],
                block[4 * c + 1],
                block[4 * c + 2],
                block[4 * c + 3],
            ]) ^ self.rk[0][c];
        }
        for round in 1..10 {
            let mut t = [0u32; 4];
            for c in 0..4 {
                // ShiftRows selects row r from column (c + r) mod 4; the
                // rotated TE0 lookup applies SubBytes + MixColumns for it.
                t[c] = TE0[(w[c] >> 24) as usize]
                    ^ TE0[((w[(c + 1) % 4] >> 16) & 0xff) as usize].rotate_right(8)
                    ^ TE0[((w[(c + 2) % 4] >> 8) & 0xff) as usize].rotate_right(16)
                    ^ TE0[(w[(c + 3) % 4] & 0xff) as usize].rotate_right(24)
                    ^ self.rk[round][c];
            }
            w = t;
        }
        // Final round: SubBytes + ShiftRows only, no MixColumns.
        for c in 0..4 {
            let t = ((SBOX[(w[c] >> 24) as usize] as u32) << 24)
                | ((SBOX[((w[(c + 1) % 4] >> 16) & 0xff) as usize] as u32) << 16)
                | ((SBOX[((w[(c + 2) % 4] >> 8) & 0xff) as usize] as u32) << 8)
                | (SBOX[(w[(c + 3) % 4] & 0xff) as usize] as u32);
            block[4 * c..4 * c + 4].copy_from_slice(&(t ^ self.rk[10][c]).to_be_bytes());
        }
    }

    /// The byte-wise FIPS-197 rounds the T-table form was derived from:
    /// SubBytes, ShiftRows and MixColumns as separate per-byte passes.
    /// Selected by [`crate::set_reference_impl`] so the wall-clock harness
    /// can price the table rewrite; the tests check both forms compute the
    /// same permutation.
    fn encrypt_block_reference(&self, block: &mut [u8; 16]) {
        let round_key = |r: usize| -> [u8; 16] {
            let mut out = [0u8; 16];
            for c in 0..4 {
                out[4 * c..4 * c + 4].copy_from_slice(&self.rk[r][c].to_be_bytes());
            }
            out
        };
        add_round_key(block, &round_key(0));
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &round_key(round));
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &round_key(10));
    }
}

fn xtime(b: u8) -> u8 {
    let hi = b & 0x80;
    let mut r = b << 1;
    if hi != 0 {
        r ^= 0x1b;
    }
    r
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

// State layout: column-major, state[4*c + r] is row r of column c.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let a0 = state[4 * c];
        let a1 = state[4 * c + 1];
        let a2 = state[4 * c + 2];
        let a3 = state[4 * c + 3];
        state[4 * c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
        state[4 * c + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
        state[4 * c + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
        state[4 * c + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS-197 Appendix B.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32,
            ]
        );
    }

    // NIST AESAVS known-answer: all-zero key, all-zero plaintext.
    #[test]
    fn zero_key_zero_block() {
        let mut block = [0u8; 16];
        Aes128::new(&[0u8; 16]).encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34,
                0x2b, 0x2e,
            ]
        );
    }

    #[test]
    fn deterministic() {
        let key = [7u8; 16];
        let mut a = [9u8; 16];
        let mut b = [9u8; 16];
        Aes128::new(&key).encrypt_block(&mut a);
        Aes128::new(&key).encrypt_block(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn table_rounds_match_bytewise_reference() {
        // Deterministic pseudorandom keys and blocks (xorshift).
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..200 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            key[..8].copy_from_slice(&next().to_le_bytes());
            key[8..].copy_from_slice(&next().to_le_bytes());
            block[..8].copy_from_slice(&next().to_le_bytes());
            block[8..].copy_from_slice(&next().to_le_bytes());
            let aes = Aes128::new(&key);
            let mut fast = block;
            aes.encrypt_block(&mut fast);
            let mut slow = block;
            aes.encrypt_block_reference(&mut slow);
            assert_eq!(fast, slow, "key {key:02x?} block {block:02x?}");
        }
    }
}
