#![warn(missing_docs)]

//! From-scratch cryptographic substrate for the Nested Enclave reproduction.
//!
//! The SGX architecture relies on a handful of cryptographic primitives:
//!
//! * **SHA-256** — enclave measurement (`MRENCLAVE`), author identity
//!   (`MRSIGNER`), and report MACs are all built from keyed hashing.
//! * **HMAC-SHA-256** — report MACs for local attestation.
//! * **AES-128-GCM** — the authenticated encryption the paper's baseline uses
//!   for enclave-to-enclave communication through untrusted memory
//!   (Fig. 11 `GCM` series), and what sealed data uses.
//!
//! Everything here is implemented from scratch in safe Rust so the workspace
//! has no external crypto dependencies. These implementations favour clarity
//! over speed; the simulator's *cost model* (not the host speed of this code)
//! is what drives the paper's performance figures.
//!
//! # Example
//!
//! ```
//! use ne_crypto::{sha256, gcm::AesGcm};
//!
//! let digest = sha256::digest(b"enclave image");
//! assert_eq!(digest.len(), 32);
//!
//! let key = [0u8; 16];
//! let cipher = AesGcm::new(&key);
//! let nonce = [1u8; 12];
//! let sealed = cipher.seal(&nonce, b"secret", b"aad");
//! let opened = cipher.open(&nonce, &sealed, b"aad").unwrap();
//! assert_eq!(opened, b"secret");
//! ```

pub mod aes;
pub mod ct;
pub mod gcm;
pub mod hmac;
pub mod kdf;
pub mod sha256;

pub use gcm::{AesGcm, OpenError};
pub use sha256::{digest as sha256_digest, Sha256};

use std::sync::atomic::{AtomicBool, Ordering};

static REFERENCE_IMPL: AtomicBool = AtomicBool::new(false);

/// Switches AES/GHASH between the table-driven hot-path implementation
/// (default) and the byte-and-bit-wise reference implementation they were
/// derived from. Both compute the identical functions — the per-crate tests
/// check them against each other and against the NIST/FIPS known-answer
/// vectors — so the flag changes wall-clock speed only, never output. The
/// wall-clock harness (`ne-wallclock`) uses it to measure what the
/// table-driven forms buy on real serving runs.
pub fn set_reference_impl(on: bool) {
    REFERENCE_IMPL.store(on, Ordering::Relaxed);
}

/// True when [`set_reference_impl`] selected the reference implementation.
pub fn reference_impl() -> bool {
    REFERENCE_IMPL.load(Ordering::Relaxed)
}

/// A 256-bit digest, the unit of enclave measurement in SGX.
pub type Digest32 = [u8; 32];
