//! HMAC-SHA-256 (RFC 2104), used for SGX report MACs in local attestation.

use crate::sha256::Sha256;

/// Computes `HMAC-SHA-256(key, data)`.
///
/// # Example
///
/// ```
/// let mac = ne_crypto::hmac::hmac_sha256(b"report key", b"report body");
/// assert_eq!(mac.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// Incremental HMAC-SHA-256.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; 64],
}

impl HmacSha256 {
    /// Creates a MAC keyed with `key`. Keys longer than the block size are
    /// first hashed, as RFC 2104 requires.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; 64];
        if key.len() > 64 {
            let hashed = crate::sha256::digest(key);
            block_key[..32].copy_from_slice(&hashed);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"part one ");
        mac.update(b"part two");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"part one part two"));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
    }
}
