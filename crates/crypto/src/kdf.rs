//! A small HMAC-based key-derivation function.
//!
//! Used wherever the simulated platform derives keys: the sealing key an
//! enclave obtains from its measurement, the report key used in local
//! attestation, and the session keys of the mini-TLS handshake.

use crate::hmac::hmac_sha256;

/// Derives a 16-byte AES key from `secret` bound to a `label` and `context`.
///
/// This follows the single-block special case of HKDF-Expand: one HMAC
/// invocation suffices because the output is shorter than a digest.
///
/// # Example
///
/// ```
/// let k1 = ne_crypto::kdf::derive_key(b"platform secret", b"seal", b"enclave A");
/// let k2 = ne_crypto::kdf::derive_key(b"platform secret", b"seal", b"enclave B");
/// assert_ne!(k1, k2);
/// ```
pub fn derive_key(secret: &[u8], label: &[u8], context: &[u8]) -> [u8; 16] {
    let mut input = Vec::with_capacity(label.len() + context.len() + 2);
    input.extend_from_slice(label);
    input.push(0);
    input.extend_from_slice(context);
    input.push(1);
    let full = hmac_sha256(secret, &input);
    let mut out = [0u8; 16];
    out.copy_from_slice(&full[..16]);
    out
}

/// Derives a 32-byte secret, for chained derivations.
pub fn derive_secret(secret: &[u8], label: &[u8], context: &[u8]) -> [u8; 32] {
    let mut input = Vec::with_capacity(label.len() + context.len() + 2);
    input.extend_from_slice(label);
    input.push(0);
    input.extend_from_slice(context);
    input.push(2);
    hmac_sha256(secret, &input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_key(b"s", b"l", b"c"), derive_key(b"s", b"l", b"c"));
    }

    #[test]
    fn label_separates() {
        assert_ne!(derive_key(b"s", b"l1", b"c"), derive_key(b"s", b"l2", b"c"));
    }

    #[test]
    fn context_separates() {
        assert_ne!(derive_key(b"s", b"l", b"c1"), derive_key(b"s", b"l", b"c2"));
    }

    #[test]
    fn secret_separates() {
        assert_ne!(derive_key(b"s1", b"l", b"c"), derive_key(b"s2", b"l", b"c"));
    }

    #[test]
    fn key_and_secret_domains_differ() {
        let k = derive_key(b"s", b"l", b"c");
        let s = derive_secret(b"s", b"l", b"c");
        assert_ne!(&s[..16], &k[..]);
    }
}
