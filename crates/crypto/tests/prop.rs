//! Property-based tests for the crypto substrate.

use ne_crypto::gcm::AesGcm;
use ne_crypto::hmac::hmac_sha256;
use ne_crypto::kdf::derive_key;
use ne_crypto::sha256::{digest, Sha256};
use proptest::prelude::*;

proptest! {
    /// Sealing then opening returns the plaintext, for any key, nonce,
    /// payload, and AAD.
    #[test]
    fn gcm_roundtrip(
        key in prop::array::uniform16(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        plaintext in prop::collection::vec(any::<u8>(), 0..512),
        aad in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let cipher = AesGcm::new(&key);
        let sealed = cipher.seal(&nonce, &plaintext, &aad);
        prop_assert_eq!(sealed.len(), plaintext.len() + 16);
        prop_assert_eq!(cipher.open(&nonce, &sealed, &aad).unwrap(), plaintext);
    }

    /// Any single-bit flip anywhere in the ciphertext is detected.
    #[test]
    fn gcm_bitflip_detected(
        key in prop::array::uniform16(any::<u8>()),
        plaintext in prop::collection::vec(any::<u8>(), 1..256),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0..8u32,
    ) {
        let cipher = AesGcm::new(&key);
        let nonce = [0u8; 12];
        let mut sealed = cipher.seal(&nonce, &plaintext, b"");
        let idx = byte_idx.index(sealed.len());
        sealed[idx] ^= 1 << bit;
        prop_assert!(cipher.open(&nonce, &sealed, b"").is_err());
    }

    /// Different AAD never opens.
    #[test]
    fn gcm_aad_is_bound(
        plaintext in prop::collection::vec(any::<u8>(), 0..128),
        aad1 in prop::collection::vec(any::<u8>(), 0..32),
        aad2 in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        prop_assume!(aad1 != aad2);
        let cipher = AesGcm::new(&[5; 16]);
        let sealed = cipher.seal(&[0; 12], &plaintext, &aad1);
        prop_assert!(cipher.open(&[0; 12], &sealed, &aad2).is_err());
    }

    /// Incremental hashing equals one-shot hashing for any chunking.
    #[test]
    fn sha256_chunking_invariant(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        splits in prop::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        let mut points: Vec<usize> = splits.iter().map(|s| s.index(data.len() + 1)).collect();
        points.push(0);
        points.push(data.len());
        points.sort_unstable();
        let mut h = Sha256::new();
        for w in points.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), digest(&data));
    }

    /// Distinct messages virtually never collide (structural sanity, not a
    /// collision-resistance proof).
    #[test]
    fn sha256_distinct_inputs_distinct_digests(
        a in prop::collection::vec(any::<u8>(), 0..256),
        b in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(digest(&a), digest(&b));
    }

    /// HMAC separates by both key and message.
    #[test]
    fn hmac_separation(
        k1 in prop::collection::vec(any::<u8>(), 1..64),
        k2 in prop::collection::vec(any::<u8>(), 1..64),
        msg in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    /// KDF outputs differ across any differing (secret, label, context).
    #[test]
    fn kdf_domain_separation(
        s in prop::collection::vec(any::<u8>(), 1..32),
        l1 in prop::collection::vec(any::<u8>(), 0..16),
        l2 in prop::collection::vec(any::<u8>(), 0..16),
        c in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        prop_assume!(l1 != l2);
        prop_assert_ne!(derive_key(&s, &l1, &c), derive_key(&s, &l2, &c));
    }
}
