//! Quickstart: build an outer enclave with an inner enclave, associate
//! them with NASSO, and call across the boundary with the paper's new
//! instructions.
//!
//! ```text
//! cargo run -p nested-enclave-repro --example quickstart
//! ```

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::report::nereport;
use ne_core::runtime::{EnclaveCtx, NestedApp, TrustedFn};
use ne_sgx::config::HwConfig;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // A machine with the nested-enclave validator installed (the Fig. 6
    // TLB-miss flow).
    let mut app = NestedApp::new(HwConfig::testbed());

    // The outer enclave: a third-party library we use but do not fully
    // trust. It offers `obfuscate` to its inner enclaves.
    let lib = EnclaveImage::new("library", b"third-party").edl(Edl::new());
    let obfuscate: TrustedFn =
        Arc::new(|_cx: &mut EnclaveCtx<'_>, args: &[u8]| Ok(args.iter().rev().copied().collect()));
    app.load(lib, [("obfuscate".to_string(), obfuscate)])?;

    // The inner enclave: our security-sensitive code. It can call down
    // into the library with plain procedure-call syntax (n_ocall), but the
    // library can never look back up into it.
    let main_img =
        EnclaveImage::new("main", b"us").edl(Edl::new().ecall("handle").n_ocall("obfuscate"));
    let handle: TrustedFn = Arc::new(|cx: &mut EnclaveCtx<'_>, args: &[u8]| {
        let masked = cx.n_ocall("obfuscate", args)?;
        let mut out = b"processed:".to_vec();
        out.extend_from_slice(&masked);
        Ok(out)
    });
    app.load(main_img, [("handle".to_string(), handle)])?;

    // NASSO: cross-validated association (each side's signed file pins the
    // other's identity; the runtime wires that up from the images).
    app.associate("main", "library")?;

    // An ecall from the untrusted world into the inner enclave, which
    // calls the outer library and returns.
    let reply = app.ecall(0, "main", "handle", b"hello")?;
    println!("reply: {}", String::from_utf8_lossy(&reply));
    assert_eq!(reply, b"processed:olleh");

    // The hardware counted the transitions:
    let stats = app.machine.stats();
    println!(
        "transitions: {} ecalls, {} ocalls, {} n_ecalls, {} n_ocalls",
        stats.ecalls, stats.ocalls, stats.n_ecalls, stats.n_ocalls
    );

    // NEREPORT: attest the inner enclave *including* its relationship to
    // the outer enclave.
    let verifier = app.eid("library")?;
    let main_eid = app.eid("main")?;
    let main_base = app.layout("main")?.base;
    app.machine.eenter(1, main_eid, main_base)?;
    let report = nereport(&mut app.machine, 1, verifier, [0u8; 64])?;
    app.machine.eexit(1)?;
    println!(
        "nested report: {} relation(s), first role {:?}",
        report.relations.len(),
        report.relations.first().map(|r| r.relation)
    );

    // And the security property that motivates all of this: the untrusted
    // world reads only abort-page ones from enclave memory.
    let heap = app.layout("main")?.heap_base;
    let snooped = app.untrusted(0, |cx| cx.read(heap, 8))?;
    assert_eq!(snooped, vec![0xFF; 8]);
    println!("untrusted snoop of inner heap: {snooped:02X?} (abort page)");
    println!("quickstart OK");
    Ok(())
}
