//! § VIII extension: multi-level nesting as defense in depth.
//!
//! A three-tier pipeline — protocol parser (outermost, most exposed),
//! business logic (middle), key vault (innermost) — where each tier can
//! reach *down* the chain for data it owns at a lower classification but
//! never *up*. Compromising the parser yields nothing from the logic tier;
//! compromising the logic tier yields nothing from the vault.
//!
//! Requires the depth-3 validator (`NestedValidator::with_max_depth(3)`).
//!
//! ```text
//! cargo run -p nested-enclave-repro --example defense_in_depth
//! ```

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn};
use ne_core::validate::NestedValidator;
use ne_sgx::config::HwConfig;
use ne_sgx::machine::Machine;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let machine = Machine::with_validator(
        HwConfig::testbed(),
        Box::new(NestedValidator::with_max_depth(3)),
    );
    let mut app = NestedApp::with_machine(machine);

    // Tier 0 (outermost): the protocol parser — 3rd-party code, most
    // exposed, lowest classification.
    let parser = EnclaveImage::new("parser", b"3rd-party")
        .heap_pages(2)
        .edl(Edl::new().ecall("handle"));
    let handle: TrustedFn = Arc::new(|cx, wire| {
        // Parse "verb payload", then hand off to the logic tier.
        let text = String::from_utf8_lossy(wire).to_string();
        let (verb, payload) = text.split_once(' ').unwrap_or((&text, ""));
        cx.n_ecall("logic", "process", format!("{verb}:{payload}").as_bytes())
    });
    app.load(parser, [("handle".to_string(), handle)])?;

    // Tier 1: business logic — in-house code, middle classification. It is
    // an *inner* of the parser, so the parser cannot see its state, but it
    // can read parser memory (e.g. zero-copy request buffers).
    let logic = EnclaveImage::new("logic", b"acme")
        .heap_pages(2)
        .edl(Edl::new().n_ecall("process"));
    let process: TrustedFn = Arc::new(|cx, req| {
        let text = String::from_utf8_lossy(req).to_string();
        match text.split_once(':') {
            Some(("sign", payload)) => {
                let mac = cx.n_ecall("vault", "sign", payload.as_bytes())?;
                let mut out = b"signed:".to_vec();
                out.extend_from_slice(&mac[..8]);
                Ok(out)
            }
            _ => Ok(b"error:unknown verb".to_vec()),
        }
    });
    app.load(logic, [("process".to_string(), process)])?;

    // Tier 2 (innermost): the key vault — top secret. Only the logic tier
    // may call it; the signing key never leaves it.
    let vault = EnclaveImage::new("vault", b"acme-security")
        .heap_pages(1)
        .edl(Edl::new().n_ecall("sign"));
    let sign: TrustedFn = Arc::new(|cx, payload| {
        // Derive the signing key from the platform (EGETKEY) on demand —
        // it exists only inside the vault.
        let key = cx
            .machine
            .egetkey(cx.core(), ne_sgx::attest::KeyPolicy::SealToEnclave)?;
        Ok(ne_crypto::hmac::hmac_sha256(&key, payload).to_vec())
    });
    app.load(vault, [("sign".to_string(), sign)])?;

    // Chain the tiers: logic inside parser, vault inside logic.
    app.associate("logic", "parser")?;
    app.associate("vault", "logic")?;

    let reply = app.ecall(0, "parser", "handle", b"sign hello-world")?;
    println!("reply: {}", String::from_utf8_lossy(&reply[..7]));
    assert!(reply.starts_with(b"signed:"));
    let stats = app.machine.stats();
    println!(
        "transitions: {} n_ecalls / {} n_ocalls across the 3-tier chain",
        stats.n_ecalls, stats.n_ocalls
    );

    // Now the security claims, tier by tier.
    let vault_heap = app.layout("vault")?.heap_base;
    let logic_heap = app.layout("logic")?.heap_base;
    let parser_heap = app.layout("parser")?.heap_base;

    // Compromised parser: cannot read logic or vault.
    let parser_l = app.layout("parser")?;
    app.machine.eenter(0, parser_l.eid, parser_l.base)?;
    assert!(app.machine.read(0, logic_heap, 8).is_err());
    assert!(app.machine.read(0, vault_heap, 8).is_err());
    app.machine.eexit(0)?;
    println!("parser tier: cannot read logic or vault (hardware faults)");

    // Compromised logic: can read the parser (lower tier) but not the vault.
    let logic_l = app.layout("logic")?;
    app.machine.eenter(0, logic_l.eid, logic_l.base)?;
    assert!(app.machine.read(0, parser_heap, 8).is_ok());
    assert!(app.machine.read(0, vault_heap, 8).is_err());
    app.machine.eexit(0)?;
    println!("logic tier: reads parser (down) but not vault (up)");

    // The vault reads everything below it — the full MLS ordering.
    let vault_l = app.layout("vault")?;
    app.machine.eenter(0, vault_l.eid, vault_l.base)?;
    assert!(app.machine.read(0, logic_heap, 8).is_ok());
    assert!(app.machine.read(0, parser_heap, 8).is_ok());
    app.machine.eexit(0)?;
    println!("vault tier: reads the whole chain below it");
    app.machine.audit_tlbs().expect("invariants hold");

    println!("defense_in_depth example OK");
    Ok(())
}
