//! Case study § VI-C: the shared outer enclave as a secure, fast
//! communication channel between peer inner enclaves — compared with the
//! monolithic baseline of AES-GCM messages through untrusted memory,
//! including the Panoply-style OS message-drop attack.
//!
//! ```text
//! cargo run -p nested-enclave-repro --example secure_channel
//! ```

use ne_core::channel::{OuterChannel, UntrustedChannel};
use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::NestedApp;
use ne_sgx::config::HwConfig;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut app = NestedApp::new(HwConfig::testbed());
    // Outer hub + two peer inner enclaves.
    app.load(
        EnclaveImage::new("hub", b"provider")
            .heap_pages(64)
            .edl(Edl::new()),
        [],
    )?;
    for name in ["producer", "consumer"] {
        app.load(
            EnclaveImage::new(name, b"tenant")
                .heap_pages(2)
                .edl(Edl::new()),
            [],
        )?;
        app.associate(name, "hub")?;
    }

    println!("== nested: channel through the MEE-protected outer enclave ==");
    let producer = app.eid("producer")?;
    let producer_tcs = app.layout("producer")?.base;
    app.machine.eenter(0, producer, producer_tcs)?;
    let channel = {
        let mut cx = app.enclave_ctx(0, "producer");
        let ch = OuterChannel::create(&mut cx, "hub", 64 * 1024)?;
        for i in 0..8u8 {
            ch.send(
                &mut cx,
                &format!("order #{i}: buy 100 @ 42.{i}").into_bytes(),
            )?;
        }
        ch
    };
    app.machine.eexit(0)?;

    // The consumer drains it — no software crypto anywhere.
    let consumer = app.eid("consumer")?;
    let consumer_tcs = app.layout("consumer")?.base;
    app.machine.eenter(0, consumer, consumer_tcs)?;
    {
        let mut cx = app.enclave_ctx(0, "consumer");
        let mut received = 0;
        while let Some(msg) = channel.recv(&mut cx)? {
            println!("  consumer got: {}", String::from_utf8_lossy(&msg));
            received += 1;
        }
        assert_eq!(received, 8);
    }
    app.machine.eexit(0)?;

    // The OS sees only abort-page ones when it snoops the channel memory,
    // and it has no drop/replay hook at all: the ring never leaves the
    // protected memory.
    let base = channel.base();
    let snooped = app.untrusted(0, |cx| cx.read(base.add(128), 32))?;
    assert_eq!(snooped, vec![0xFF; 32]);
    println!("  OS snoop of channel memory: all 0xFF (abort page)\n");

    println!("== baseline: AES-GCM messages through untrusted memory ==");
    let mut gcm = app.untrusted(0, |cx| UntrustedChannel::create(cx, [9; 16], 64 * 1024));
    app.machine.eenter(0, producer, producer_tcs)?;
    {
        let mut cx = app.enclave_ctx(0, "producer");
        gcm.send(&mut cx, b"initialize certificate check")?;
        let got = gcm.recv(&mut cx)?.expect("delivered");
        println!("  normal delivery works: {}", String::from_utf8_lossy(&got));

        // Panoply's attack (§ VII-B): the OS silently drops the next
        // message. The receiver polls, sees nothing, proceeds without the
        // callback ever firing — and has no way to notice.
        gcm.os_drop_next();
        gcm.send(&mut cx, b"initialize certificate check")?;
        let got = gcm.recv(&mut cx)?;
        assert!(got.is_none());
        println!("  after OS drop: receiver sees an empty channel (attack succeeds silently)");
    }
    app.machine.eexit(0)?;

    println!("\nsecure_channel example OK");
    Ok(())
}
