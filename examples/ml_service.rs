//! Case study § VI-B: machine learning as a service with per-user inner
//! enclaves sharing one LibSVM outer enclave.
//!
//! Each client gets an inner enclave that decrypts its private samples,
//! strips the privacy-sensitive columns, and only then calls the shared
//! library. Peer inner enclaves are hardware-isolated from each other:
//! user A can never read user B's raw data, and neither can the library.
//!
//! ```text
//! cargo run -p nested-enclave-repro --example ml_service
//! ```

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn};
use ne_sgx::config::HwConfig;
use ne_svm::data::Dataset;
use ne_svm::filter::FilterPolicy;
use ne_svm::smo::{train, TrainParams};
use std::collections::HashMap;
use std::error::Error;
use std::sync::{Arc, Mutex};

fn main() -> Result<(), Box<dyn Error>> {
    let mut app = NestedApp::new(HwConfig::testbed());

    // The shared service library: one SVM model slot per user.
    let models: Arc<Mutex<HashMap<String, ne_svm::SvmModel>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let lib = EnclaveImage::new("libsvm", b"service-provider")
        .code_pages(32)
        .heap_pages(8)
        .edl(Edl::new());
    let m1 = models.clone();
    let svm_train: TrustedFn = Arc::new(move |_cx, args| {
        let (user, data) = split_user(args);
        let ds = Dataset::from_bytes(data, 2);
        let model = train(&ds, &TrainParams::default());
        m1.lock().expect("poisoned").insert(user, model);
        Ok(vec![])
    });
    let m2 = models.clone();
    let svm_predict: TrustedFn = Arc::new(move |_cx, args| {
        let (user, data) = split_user(args);
        let ds = Dataset::from_bytes(data, 2);
        let guard = m2.lock().expect("poisoned");
        let model = guard.get(&user).expect("train first");
        Ok(ds.samples.iter().map(|x| model.predict(x) as u8).collect())
    });
    app.load(
        lib,
        [
            ("svm_train".to_string(), svm_train),
            ("svm_predict".to_string(), svm_predict),
        ],
    )?;

    // Three tenants, each with a private inner enclave holding its raw
    // data and its anonymization filter.
    let users = ["alice", "bob", "carol"];
    for (i, user) in users.iter().enumerate() {
        let img = EnclaveImage::new(user, format!("tenant-{user}").as_bytes())
            .heap_pages(8)
            .edl(
                Edl::new()
                    .ecall("train")
                    .ecall("predict")
                    .n_ocall("svm_train")
                    .n_ocall("svm_predict"),
            );
        let uname = user.to_string();
        let policy = FilterPolicy {
            drop_columns: vec![i], // each tenant treats a different column as private
            quantize: vec![],
        };
        let p2 = policy.clone();
        let u2 = uname.clone();
        let train_fn: TrustedFn = Arc::new(move |cx, args| {
            // Raw client data is top secret: it is only ever plaintext here,
            // in the tenant's own inner enclave.
            let ds = Dataset::from_bytes(args, 2);
            let sanitized = policy.anonymize(&ds);
            cx.n_ocall("svm_train", &with_user(&uname, &sanitized.to_bytes()))
        });
        let predict_fn: TrustedFn = Arc::new(move |cx, args| {
            let ds = Dataset::from_bytes(args, 2);
            let sanitized = p2.anonymize(&ds);
            cx.n_ocall("svm_predict", &with_user(&u2, &sanitized.to_bytes()))
        });
        app.load(
            img,
            [
                ("train".to_string(), train_fn),
                ("predict".to_string(), predict_fn),
            ],
        )?;
        app.associate(user, "libsvm")?;
    }

    // Each tenant trains on its own data and gets useful predictions.
    for (i, user) in users.iter().enumerate() {
        let data = Dataset::synthetic(2, 60, 16, 100 + i as u64);
        app.ecall(0, user, "train", &data.to_bytes())?;
        let test = Dataset::synthetic(2, 20, 16, 900 + i as u64);
        let preds = app.ecall(0, user, "predict", &test.to_bytes())?;
        let correct = preds
            .iter()
            .zip(&test.labels)
            .filter(|(&p, &l)| p as usize == l)
            .count();
        println!(
            "{user}: accuracy {}/{} on held-out data",
            correct,
            test.len()
        );
        assert!(correct * 100 / test.len() > 70, "model should be useful");
    }

    // Peer isolation: alice's inner enclave cannot be read by bob's, by
    // the library, or by the untrusted world.
    let alice_heap = app.layout("alice")?.heap_base;
    let snoop = app.untrusted(0, |cx| cx.read(alice_heap, 16))?;
    assert_eq!(snoop, vec![0xFF; 16], "untrusted sees abort-page ones");
    let bob = app.eid("bob")?;
    let bob_base = app.layout("bob")?.base;
    app.machine.eenter(0, bob, bob_base)?;
    let err = app.machine.read(0, alice_heap, 16).unwrap_err();
    app.machine.eexit(0)?;
    println!("bob reading alice's inner enclave: {err}");
    let lib_eid = app.eid("libsvm")?;
    let lib_base = app.layout("libsvm")?.base;
    app.machine.eenter(0, lib_eid, lib_base)?;
    let err = app.machine.read(0, alice_heap, 16).unwrap_err();
    app.machine.eexit(0)?;
    println!("shared library reading alice's inner enclave: {err}");

    let stats = app.machine.stats();
    println!(
        "transitions: {} n_ecalls + {} n_ocalls across {} tenants sharing one library",
        stats.n_ecalls,
        stats.n_ocalls,
        users.len()
    );
    println!("ml_service example OK");
    Ok(())
}

fn with_user(user: &str, data: &[u8]) -> Vec<u8> {
    let mut out = vec![user.len() as u8];
    out.extend_from_slice(user.as_bytes());
    out.extend_from_slice(data);
    out
}

fn split_user(args: &[u8]) -> (String, &[u8]) {
    let n = args[0] as usize;
    (
        String::from_utf8_lossy(&args[1..1 + n]).to_string(),
        &args[1 + n..],
    )
}
