//! Case study § VI-A: reproducing HeartBleed inside an enclave, then
//! confining it with a nested enclave.
//!
//! The vulnerable mini-TLS library processes heartbeat requests by
//! trusting the attacker-controlled length field. In the monolithic
//! configuration the library shares the enclave (and heap) with the
//! application, so the over-read returns application secrets. In the
//! nested configuration the library runs in the outer enclave; the same
//! over-read slams into the inner enclave's pages and the access
//! validation hardware faults it.
//!
//! ```text
//! cargo run -p nested-enclave-repro --example heartbleed
//! ```

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn};
use ne_sgx::config::HwConfig;
use ne_sgx::error::SgxError;
use ne_tls::heartbeat::{process_heartbeat, HeartbeatConfig, MAX_HEARTBEAT};
use std::error::Error;
use std::sync::Arc;

const SECRET: &[u8] = b"PRIVATE-KEY: 9f3a1c...";

/// The vulnerable library entry point: store the request payload in the
/// session buffer, then echo `claimed` bytes back.
fn heartbeat_fn(lib: &'static str) -> TrustedFn {
    Arc::new(move |cx, args| {
        let claimed = u32::from_le_bytes(args[..4].try_into().expect("len")) as usize;
        let payload = &args[4..];
        let buf = cx.heap_base_of(lib)?.add(256);
        cx.write(buf, payload)?;
        process_heartbeat(
            cx,
            buf,
            payload.len(),
            claimed,
            &HeartbeatConfig { vulnerable: true },
        )
    })
}

fn attack(app: &mut NestedApp, enclave: &str, claimed: usize) -> Result<Vec<u8>, SgxError> {
    let mut args = (claimed as u32).to_le_bytes().to_vec();
    args.extend_from_slice(b"ping");
    app.ecall(0, enclave, "heartbeat", &args)
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("== monolithic enclave: OpenSSL-alike + app share one protection domain ==");
    let mut mono = NestedApp::new(HwConfig::small());
    let img = EnclaveImage::new("server", b"provider")
        .heap_pages(1)
        .edl(Edl::new().ecall("heartbeat").ecall("store_secret"));
    let store: TrustedFn = Arc::new(|cx, args| {
        let heap = cx.heap_base_of("server")?;
        cx.write(heap.add(512), args)?; // app secret, adjacent on the heap
        Ok(vec![])
    });
    mono.load(
        img,
        [
            ("heartbeat".to_string(), heartbeat_fn("server")),
            ("store_secret".to_string(), store),
        ],
    )?;
    mono.ecall(0, "server", "store_secret", SECRET)?;
    let leaked = attack(&mut mono, "server", 600)?;
    let found = leaked.windows(SECRET.len()).any(|w| w == SECRET);
    println!(
        "  crafted heartbeat (claimed 600 B, sent 4 B) leaked {} bytes",
        leaked.len()
    );
    println!("  secret present in leak: {found}");
    assert!(found, "HeartBleed must reproduce in the monolithic enclave");

    println!("\n== nested enclave: library confined to the outer enclave ==");
    let mut nested = NestedApp::new(HwConfig::small());
    let lib = EnclaveImage::new("ssl", b"openssl-project")
        .heap_pages(1)
        .edl(Edl::new().ecall("heartbeat"));
    nested.load(lib, [("heartbeat".to_string(), heartbeat_fn("ssl"))])?;
    let appimg = EnclaveImage::new("app", b"provider")
        .heap_pages(1)
        .edl(Edl::new().ecall("store_secret"));
    let store: TrustedFn = Arc::new(|cx, args| {
        let heap = cx.heap_base_of("app")?;
        cx.write(heap, args)?;
        Ok(vec![])
    });
    nested.load(appimg, [("store_secret".to_string(), store)])?;
    nested.associate("app", "ssl")?;
    nested.ecall(0, "app", "store_secret", SECRET)?;

    // Same bug, same attack. Reads that stay inside the outer enclave leak
    // only outer data...
    let leaked = attack(&mut nested, "ssl", 600)?;
    let found = leaked.windows(SECRET.len()).any(|w| w == SECRET);
    println!(
        "  in-library over-read leaked {} bytes; secret present: {found}",
        leaked.len()
    );
    assert!(!found, "the secret lives in the inner enclave");

    // ...and the maximal over-read that reaches the inner enclave's pages
    // is killed by the hardware.
    match attack(&mut nested, "ssl", MAX_HEARTBEAT) {
        Err(SgxError::Fault { kind, addr }) => {
            println!("  4 KiB over-read faulted at {addr}: {kind} — attack blocked");
        }
        other => panic!("expected a hardware fault, got {other:?}"),
    }
    println!("\nheartbleed example OK");
    Ok(())
}
