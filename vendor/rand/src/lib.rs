//! Offline stand-in for the `rand` crate, covering the subset of the 0.8
//! API this workspace uses: `StdRng::seed_from_u64` plus `Rng::gen_range`
//! over half-open ranges of primitive types.
//!
//! The generator is SplitMix64 — deterministic, seedable, and statistically
//! good enough for synthetic workload generation (YCSB key draws, SVM
//! datasets). It is **not** cryptographically secure; nothing in the
//! workspace relies on that.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample uniformly from a `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a uniform value in `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as u128) - (range.start as u128);
                // Rejection-free modulo draw; span is tiny relative to 2^64
                // everywhere this stub is used, so the bias is negligible.
                let draw = (rng.next_u64() as u128) % span;
                (range.start as u128 + draw) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);
impl_sample_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample_range(rng, range.start as f64..range.end as f64) as f32
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood) — passes BigCrush when used
            // as a stream; one add + two xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-50..50i64);
            assert!((-50..50).contains(&i));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f = rng.gen_range(0.0..1.0);
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "draws should spread across the unit interval");
    }
}
