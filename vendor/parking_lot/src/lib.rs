//! Offline stand-in for `parking_lot`, exposing the subset the workspace
//! uses: a `Mutex` whose `lock()` returns the guard directly (no
//! `Result`). Backed by `std::sync::Mutex`; poisoning is swallowed, which
//! matches parking_lot's no-poisoning semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not poison
    /// the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
