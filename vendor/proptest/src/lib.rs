//! Offline stand-in for `proptest`, covering the subset of the API this
//! workspace's property tests use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]`, `#[test]`
//!   attributes, and doc comments on test functions),
//! - [`Strategy`] over primitive ranges, tuples, `Just`, mapped strategies
//!   (`prop_map`), `prop_oneof!` unions, `collection::vec`,
//!   `array::uniform12/16`, `any::<T>()`, `sample::Index`, and
//!   `sample::select`,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Differences from real proptest: generation is a deterministic
//! SplitMix64 stream seeded from the test name (stable across runs and
//! machines), rejected cases (`prop_assume!`) are simply re-drawn, and
//! there is **no shrinking** — a failing case is reported verbatim.

use std::fmt;
use std::ops::Range;

/// Deterministic random source handed to strategies during generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an arbitrary label (typically the test name),
    /// so every run of a given test sees the same case sequence.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How a generated value is produced. Object-safe so `prop_oneof!` arms of
/// different concrete types can be unified behind `Box<dyn Strategy>`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: fmt::Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

impl<V: fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// String-literal strategies: a `&str` is interpreted as a regex (subset)
/// and generates matching `String`s, mirroring proptest's regex support.
///
/// Supported syntax: concatenations of atoms `[class]` (with ranges and
/// literal chars), `\PC` (any printable char), `\d`, `\w`, or a literal
/// char, each optionally followed by `{n}`, `{m,n}`, `*`, `+`, or `?`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

mod string {
    use super::TestRng;

    // Printable pool for `\PC`: ASCII printables plus a few multibyte
    // chars so UTF-8 handling gets exercised.
    const PRINTABLE_EXTRA: [char; 6] = ['é', 'ß', 'λ', '中', '→', '🙂'];

    struct Atom {
        pool: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let pool = match c {
                '[' => {
                    let mut pool = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            None => panic!("unterminated char class in {pattern:?}"),
                            Some(']') => break,
                            Some('-')
                                if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') =>
                            {
                                let lo = prev.take().unwrap();
                                let hi = chars.next().unwrap();
                                pool.extend((lo..=hi).filter(|ch| ch.is_ascii_graphic()));
                            }
                            Some('\\') => {
                                let esc = chars.next().expect("dangling escape in class");
                                if let Some(p) = prev.take() {
                                    pool.push(p);
                                }
                                prev = Some(esc);
                            }
                            Some(other) => {
                                if let Some(p) = prev.take() {
                                    pool.push(p);
                                }
                                prev = Some(other);
                            }
                        }
                    }
                    if let Some(p) = prev {
                        pool.push(p);
                    }
                    assert!(!pool.is_empty(), "empty char class in {pattern:?}");
                    pool
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        // `\PC` — not a control character, i.e. printable.
                        assert_eq!(chars.next(), Some('C'), "only \\PC is supported");
                        let mut pool: Vec<char> = (' '..='~').collect();
                        pool.extend(PRINTABLE_EXTRA);
                        pool
                    }
                    Some('d') => ('0'..='9').collect(),
                    Some('w') => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(['_'])
                        .collect(),
                    Some(esc) => vec![esc],
                    None => panic!("dangling escape in {pattern:?}"),
                },
                lit => vec![lit],
            };

            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("bad repetition min"),
                            hi.parse().expect("bad repetition max"),
                        ),
                        None => {
                            let n = spec.parse().expect("bad repetition count");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "inverted repetition in {pattern:?}");
            atoms.push(Atom { pool, min, max });
        }
        atoms
    }

    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let n = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..n {
                out.push(atom.pool[rng.below(atom.pool.len())]);
            }
        }
        out
    }
}

/// Strategy that always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
    )*};
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Union of same-valued strategies; backs the `prop_oneof!` macro.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Builds a union that picks one of `arms` uniformly per case.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Boxes a strategy arm for [`Union`]; used by `prop_oneof!` so type
/// inference can unify heterogeneous arm types.
pub fn boxed_arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Types with a canonical "any value" strategy, via [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array::uniform12/16/32`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; N]` with every element drawn from `S`.
    pub struct ArrayStrategy<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// 12-element array strategy (e.g. AES-GCM nonces).
    pub fn uniform12<S: Strategy>(element: S) -> ArrayStrategy<S, 12> {
        ArrayStrategy(element)
    }

    /// 16-element array strategy (e.g. AES keys).
    pub fn uniform16<S: Strategy>(element: S) -> ArrayStrategy<S, 16> {
        ArrayStrategy(element)
    }

    /// 32-element array strategy.
    pub fn uniform32<S: Strategy>(element: S) -> ArrayStrategy<S, 32> {
        ArrayStrategy(element)
    }
}

/// Sampling helpers (`prop::sample::Index`, `prop::sample::select`).
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};
    use std::fmt;

    /// An index into a collection whose length is only known inside the
    /// test body; resolve it with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Maps this draw onto `[0, len)`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }

    /// Strategy over a fixed option list; backs [`select`].
    pub struct Select<T>(Vec<T>);

    /// Picks one of `options` uniformly per case.
    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select(options)
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; a fresh case is drawn.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident
            ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(50).max(1000),
                        "proptest {}: too many rejected cases (prop_assume too strict?)",
                        stringify!($name)
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    let case_desc = format!("{:?}", ( $( &$arg, )* ));
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed: {}\n  inputs ({}): {}",
                                stringify!($name),
                                msg,
                                stringify!($($arg),*),
                                case_desc
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case if the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let left = &$a;
        let right = &$b;
        $crate::prop_assert!(
            left == right,
            "assert_eq failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let left = &$a;
        let right = &$b;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let left = &$a;
        let right = &$b;
        $crate::prop_assert!(
            left != right,
            "assert_ne failed: both sides are {:?}",
            left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let left = &$a;
        let right = &$b;
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Rejects the current case (a fresh one is drawn) if the condition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Builds a [`Union`] strategy choosing uniformly among the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::boxed_arm($arm) ),+ ])
    };
}

/// Everything a property test module needs, matching
/// `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(x in 0..10u32, pair in (0..5usize, 0..100i64)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5 && (0..100).contains(&pair.1));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0..4u8).prop_map(|n| n as u32),
            Just(99u32),
        ]) {
            prop_assert!(v < 4 || v == 99);
        }

        #[test]
        fn assume_redraws(n in 0..100u32) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_applies(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(13) < 13);
        }
    }

    #[test]
    fn select_draws_from_options() {
        let s = prop::sample::select(vec!["a", "b"]);
        let mut rng = crate::TestRng::deterministic("select");
        for _ in 0..32 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(v == "a" || v == "b");
        }
    }

    #[test]
    fn string_regex_subset() {
        let mut rng = crate::TestRng::deterministic("regex");
        for _ in 0..64 {
            let s = crate::Strategy::generate(&"[a-z0-9]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let p = crate::Strategy::generate(&"\\PC{0,20}", &mut rng);
            assert!(p.chars().count() <= 20);
            assert!(p.chars().all(|c| !c.is_control()));

            let d = crate::Strategy::generate(&"x\\d{2}y?", &mut rng);
            assert!(d.starts_with('x'));
        }
    }

    #[test]
    fn arrays_have_fixed_len() {
        let s = prop::array::uniform16(any::<u8>());
        let mut rng = crate::TestRng::deterministic("arr");
        let v = crate::Strategy::generate(&s, &mut rng);
        assert_eq!(v.len(), 16);
    }
}
