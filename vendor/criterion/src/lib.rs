//! Offline stand-in for `criterion`, covering the subset the workspace's
//! benches use: `Criterion::benchmark_group`, group `sample_size` /
//! `measurement_time` / `throughput`, `bench_function` with a
//! `Bencher::iter` closure, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a simple wall-clock mean over `sample_size` samples
//! (after one warm-up), printed as plain text — no statistics, plots, or
//! baselines. Good enough for the relative comparisons these benches are
//! read for.

use std::time::{Duration, Instant};

/// Units for reporting throughput alongside timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Records per-iteration throughput for the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm-up pass (untimed).
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher);
            total += bencher.elapsed;
            iters += bencher.iters;
            if Instant::now() >= deadline {
                break;
            }
        }

        if iters == 0 {
            println!("{}/{id}: no iterations recorded", self.name);
            return self;
        }
        let per_iter = total / iters as u32;
        let mut line = format!("{}/{id}: {per_iter:?}/iter ({iters} iters)", self.name);
        if let Some(tp) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Bytes(b) => {
                        line += &format!(", {:.1} MiB/s", b as f64 / secs / (1 << 20) as f64);
                    }
                    Throughput::Elements(e) => {
                        line += &format!(", {:.0} elem/s", e as f64 / secs);
                    }
                }
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (report is printed incrementally; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timing harness passed to the benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` once and records the sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

/// Opaque-to-the-optimizer value passthrough (best effort without
/// unstable intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        let mut runs = 0u32;
        g.sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .throughput(Throughput::Bytes(1024))
            .bench_function("count", |b| {
                b.iter(|| {
                    runs += 1;
                });
            });
        g.finish();
        // warm-up + up to 3 samples, each one iteration
        assert!(runs >= 2);
    }
}
